// Package vfilter implements VID filtering, the V stage of EV-Matching
// (paper §IV-B2). Given the E-Scenario list selected for an EID by set
// splitting, it processes only the corresponding V-Scenarios: it extracts
// appearance features from every detection (paying the video-processing
// cost, once per scenario thanks to a shared cache — the reuse that gives SS
// its win over EDP), scores every candidate VID with
// P(v) = Π_S max_d sim(v, d) (Equation 1 and the simplification of §IV-B2),
// and majority-votes the per-scenario winners.
//
// The Match hot path is allocation-free in steady state: each V-Scenario's
// features live in one contiguous feature.Matrix (extracted in place, row by
// row), candidate masks are bitset-backed dense tables over the Filter's
// interned VID ordinals, per-candidate state is slice-indexed scratch
// recycled through a sync.Pool, and per-candidate scoring runs the batched
// feature.MaxSim kernel. Candidates are census-pruned before any feature
// accumulation, so the expensive per-candidate work (running means, MaxSim)
// only touches the VIDs that can still win the vote. Work counters are
// atomics so concurrent Match calls share the extraction cache without
// contending on a stats lock.
package vfilter

import (
	"cmp"
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"
	"sync/atomic"

	"evmatching/internal/bitset"
	"evmatching/internal/feature"
	"evmatching/internal/ids"
	"evmatching/internal/scenario"
)

// ErrNoStore reports construction without a scenario store.
var ErrNoStore = errors.New("vfilter: nil scenario store")

// Config parameterizes the filter.
type Config struct {
	// Extractor recovers feature vectors from detection patches.
	Extractor feature.Extractor
	// AcceptMajority is the minimum fraction of per-scenario votes the
	// winning VID must collect for the match to be acceptable (matching
	// refining re-runs unacceptable EIDs). Zero means any plurality wins.
	AcceptMajority float64
}

// Stats counts the visual-processing work performed, the paper's proxy for V
// stage cost: unique scenarios processed, feature extractions attempted
// (successful or not — a scenario whose extraction fails midway still paid
// for the attempts made), and feature comparisons.
type Stats struct {
	ScenariosProcessed int
	Extractions        int
	Comparisons        int
}

// Result is the outcome of matching one EID.
type Result struct {
	EID ids.EID
	// VID is the matched visual identity (majority of per-scenario picks),
	// or ids.NoVID when no candidate was available.
	VID ids.VID
	// Probability is the matched VID's trajectory probability Π P(v ∈ S).
	Probability float64
	// MajorityFrac is the fraction of voting scenarios won by VID.
	MajorityFrac float64
	// PerScenario records each scenario's winning VID, aligned with the
	// scenario list passed to Match (NoVID for scenarios with no usable
	// detections).
	PerScenario []ids.VID
	// Acceptable reports whether the vote clears Config.AcceptMajority.
	Acceptable bool
	// RunnerUp is the second-choice VID by trajectory probability, and
	// Margin the ratio P(VID)/P(RunnerUp) — a margin near 1 flags a match
	// worth refining or reviewing. Margin is +Inf for a lone candidate.
	RunnerUp ids.VID
	Margin   float64
}

// cacheEntry holds one V-Scenario's extracted features, computed once. The
// matrix is the kernel-facing storage; rows are per-detection views into it
// kept for the public Features accessor.
type cacheEntry struct {
	once sync.Once
	m    *feature.Matrix
	rows []feature.Vector // views into m, parallel to the detections
	ords []int32          // Filter-wide VID ordinal per detection
	err  error
}

// Filter matches EIDs to VIDs over one scenario store. It is safe for
// concurrent Match calls; the extraction cache is shared so each V-Scenario
// is processed at most once per Filter.
type Filter struct {
	store *scenario.Store
	cfg   Config

	mu    sync.Mutex // guards cache and the VID intern tables
	cache map[scenario.ID]*cacheEntry
	// VID interning: every VID observed in an extracted scenario gets a
	// dense ordinal, so the Match hot loops index slices and bitsets instead
	// of hashing string VIDs. Ordinals are stable for the Filter's lifetime.
	vidOrd   map[ids.VID]int32
	vidByOrd []ids.VID

	// matrixSource, when set, is consulted before extraction: if it returns
	// a matrix for the scenario (e.g. reloaded from the spill tier), that
	// matrix is installed instead of re-extracting from detection patches.
	// Set once at construction time, before any Match runs.
	matrixSource MatrixSource

	scenariosProcessed atomic.Int64
	extractions        atomic.Int64
	comparisons        atomic.Int64

	pool sync.Pool // of *scratch
}

// New creates a Filter over the store.
func New(store *scenario.Store, cfg Config) (*Filter, error) {
	if store == nil {
		return nil, ErrNoStore
	}
	if cfg.Extractor.Dim < 2 {
		return nil, fmt.Errorf("vfilter: extractor dim %d", cfg.Extractor.Dim)
	}
	if cfg.AcceptMajority < 0 || cfg.AcceptMajority > 1 {
		return nil, fmt.Errorf("vfilter: AcceptMajority %f out of [0,1]", cfg.AcceptMajority)
	}
	f := &Filter{
		store:  store,
		cfg:    cfg,
		cache:  make(map[scenario.ID]*cacheEntry),
		vidOrd: make(map[ids.VID]int32),
	}
	f.pool.New = func() any { return new(scratch) }
	return f, nil
}

// MatrixSource supplies a previously extracted feature matrix for a
// scenario, or (nil, nil) when it has none. The matrix must be the one this
// Filter (or an identically configured extractor) produced, so a reload is
// bit-identical to re-extraction.
type MatrixSource func(id scenario.ID) (*feature.Matrix, error)

// SetMatrixSource installs the reload path for spilled feature matrices.
// Must be called before the first Match.
func (f *Filter) SetMatrixSource(src MatrixSource) { f.matrixSource = src }

// Drop removes id's cached features and returns the extracted matrix, so
// the eviction path can spill it for later reload through the matrix
// source. Entries that never finished extracting (or failed) are kept and
// (nil, false) is returned. The caller serializes Drop against Match.
func (f *Filter) Drop(id scenario.ID) (*feature.Matrix, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	entry, ok := f.cache[id]
	if !ok || entry.m == nil {
		return nil, false
	}
	delete(f.cache, id)
	return entry.m, true
}

// Stats returns a snapshot of the accumulated work counters.
func (f *Filter) Stats() Stats {
	return Stats{
		ScenariosProcessed: int(f.scenariosProcessed.Load()),
		Extractions:        int(f.extractions.Load()),
		Comparisons:        int(f.comparisons.Load()),
	}
}

// Features returns the extracted feature vectors of the V-Scenario with the
// given ID, computing and caching them on first use. A scenario with no
// detections yields (nil, nil). The returned vectors are views into the
// scenario's feature matrix; callers must not modify them.
func (f *Filter) Features(id scenario.ID) ([]feature.Vector, error) {
	s := f.pool.Get().(*scratch)
	entry, err := f.features(id, &s.xbuf)
	f.pool.Put(s)
	if err != nil {
		return nil, err
	}
	if entry == nil {
		return nil, nil
	}
	return entry.rows, entry.err
}

// ExtractBatch processes a contiguous batch of V-Scenarios through the
// shared extraction cache — the worker-side entry point of the batched
// parallel V stage (paper §V-C). One pooled scratch provides the single
// extraction buffer reused across every patch of every scenario in the
// batch, so a worker amortizes working-storage costs across the scenarios it
// owns instead of paying them per task. Scenarios already extracted (by this
// or any concurrent caller) are skipped by the cache. The first extraction
// error is returned; earlier scenarios of the batch stay cached.
func (f *Filter) ExtractBatch(list []scenario.ID) error {
	if len(list) == 0 {
		return nil
	}
	s := f.pool.Get().(*scratch)
	defer f.pool.Put(s)
	for _, id := range list {
		entry, err := f.features(id, &s.xbuf)
		if err != nil {
			return err
		}
		if entry != nil && entry.err != nil {
			return entry.err
		}
	}
	return nil
}

// features returns the scenario's populated cache entry, or nil when the
// scenario has no detections. The error return is a page-in failure from
// the store (an evicted payload that could not be reloaded); extraction
// failures stay cached inside the entry as before.
func (f *Filter) features(id scenario.ID, buf *feature.ExtractBuf) (*cacheEntry, error) {
	v, err := f.store.VChecked(id)
	if err != nil {
		return nil, err
	}
	return f.featuresFor(id, v, buf), nil
}

// featuresFor is features for a caller that already fetched (or paged in)
// the V-Scenario, so the hot Match path touches the store exactly once per
// scenario. A failed extraction is cached (and its cost counted) once;
// later calls observe the same error without re-extracting. buf is the
// caller's reusable extraction working storage.
func (f *Filter) featuresFor(id scenario.ID, v *scenario.VScenario, buf *feature.ExtractBuf) *cacheEntry {
	if v == nil || len(v.Detections) == 0 {
		return nil
	}
	f.mu.Lock()
	entry := f.cache[id]
	if entry == nil {
		entry = &cacheEntry{}
		f.cache[id] = entry
	}
	f.mu.Unlock()

	entry.once.Do(func() {
		// A spilled matrix, when available, short-circuits extraction: it
		// is the same matrix a previous extraction produced, so installing
		// it is bit-identical to re-extracting the patches.
		if src := f.matrixSource; src != nil {
			m, err := src(id)
			if err != nil {
				entry.err = fmt.Errorf("vfilter: reload features scenario %d: %w", id, err)
				return
			}
			if m != nil {
				f.fill(entry, v, m)
				return
			}
		}
		m, err := feature.NewMatrix(f.cfg.Extractor.Dim, len(v.Detections))
		if err != nil {
			entry.err = fmt.Errorf("vfilter: features scenario %d: %w", id, err)
			return
		}
		for i := range v.Detections {
			if err := f.cfg.Extractor.ExtractIntoBuf(v.Detections[i].Patch, m.Row(i), buf); err != nil {
				entry.err = fmt.Errorf("vfilter: extract scenario %d detection %d: %w", id, i, err)
				// The i successful extractions plus this failed attempt were
				// real work; count them even though the scenario is unusable.
				f.extractions.Add(int64(i + 1))
				return
			}
		}
		f.fill(entry, v, m)
	})
	return entry
}

// fill completes a cache entry from an extracted matrix: row views, interned
// VID ordinals, and the work counters. Callers run inside entry.once.
func (f *Filter) fill(entry *cacheEntry, v *scenario.VScenario, m *feature.Matrix) {
	entry.m = m
	entry.rows = make([]feature.Vector, m.Rows())
	for i := range entry.rows {
		entry.rows[i] = m.Row(i)
	}
	ords := make([]int32, len(v.Detections))
	f.mu.Lock()
	for i := range v.Detections {
		vid := v.Detections[i].VID
		ord, ok := f.vidOrd[vid]
		if !ok {
			ord = int32(len(f.vidByOrd))
			f.vidOrd[vid] = ord
			f.vidByOrd = append(f.vidByOrd, vid)
		}
		ords[i] = ord
	}
	f.mu.Unlock()
	entry.ords = ords
	f.scenariosProcessed.Add(1)
	f.extractions.Add(int64(m.Rows()))
}

// Prime installs a pre-extracted feature matrix for the V-Scenario with the
// given ID, so a later Match finds the scenario already processed. This is
// the merge-side half of sharded streaming's parallel extraction: shard
// windowers extract features when they seal a window, and the merge stage
// primes the shared cache instead of re-paying the extraction serially. The
// matrix must hold one row per detection, in detection order, produced by an
// extractor configured identically to the Filter's — priming is then
// bit-identical to lazy extraction. A scenario already extracted (or already
// primed) keeps its existing entry and the offered matrix is dropped. The
// extraction is counted in Stats exactly as a lazy one would be: the work was
// paid, just on another goroutine.
func (f *Filter) Prime(id scenario.ID, m *feature.Matrix) error {
	v, err := f.store.VChecked(id)
	if err != nil {
		return fmt.Errorf("vfilter: prime scenario %d: %w", id, err)
	}
	if v == nil || len(v.Detections) == 0 {
		return fmt.Errorf("vfilter: prime scenario %d: no detections in store", id)
	}
	if m == nil || m.Rows() != len(v.Detections) || m.Dim() != f.cfg.Extractor.Dim {
		return fmt.Errorf("vfilter: prime scenario %d: matrix shape mismatch", id)
	}
	f.mu.Lock()
	entry := f.cache[id]
	if entry == nil {
		entry = &cacheEntry{}
		f.cache[id] = entry
	}
	f.mu.Unlock()
	entry.once.Do(func() {
		f.fill(entry, v, m)
	})
	return nil
}

// scan pairs one scenario of the Match list with its feature matrix and the
// interned VID ordinals of its detections.
type scan struct {
	v    *scenario.VScenario
	m    *feature.Matrix
	ords []int32
}

// scratch is the per-Match working state, recycled through Filter.pool. The
// candidate census runs over dense ordinal-indexed tables: bitset masks for
// exclusion and pruning survival plus presence counters, all sized by the
// Filter's VID intern table. Only candidates surviving the census get slots
// (numbered by discovery order); every per-candidate quantity lives in a
// slot-indexed slice, so the hot loops touch no map at all.
type scratch struct {
	scans []scan
	xbuf  feature.ExtractBuf // extraction working storage, shared per batch

	// Ordinal-indexed dense tables (grow-only; see ensureOrds).
	excl      bitset.Set // VID ordinal → excluded from this Match
	kept      bitset.Set // VID ordinal → survived trajectory pruning
	presence  []int32    // VID ordinal → scenarios sighted in, this Match
	seenScen  []int64    // VID ordinal → stamp of last scenario counted
	slotByOrd []int32    // VID ordinal → slot, -1 when absent
	stamp     int64      // monotone per-scenario stamp; never reset

	candOrds []int32 // ordinals sighted this Match, discovery order

	// Slot-indexed state for the surviving candidates.
	slotOrds []int32   // slot → VID ordinal, discovery order
	vids     []ids.VID // slot → VID, discovery order
	order    []int     // slots in lexicographic VID order (the deterministic order)
	accs     []feature.MeanAccum
	prob     []float64
	votes    []int
	reps     []float64 // slot-major representative slab, nslots×dim
}

// reset prepares the scratch for a Match over n scenarios. accs keeps its
// length (each accumulator owns a reusable buffer). The ordinal tables of
// the previous Match are put back entry by entry (presence via candOrds,
// slotByOrd via slotOrds), so they never need a full clear; seenScen relies
// on the monotone stamp and is never cleared at all.
func (s *scratch) reset(n int) {
	if cap(s.scans) < n {
		s.scans = make([]scan, n)
	}
	s.scans = s.scans[:n]
	for i := range s.scans {
		s.scans[i] = scan{}
	}
	for _, ord := range s.candOrds {
		s.presence[ord] = 0
	}
	s.candOrds = s.candOrds[:0]
	for _, ord := range s.slotOrds {
		s.slotByOrd[ord] = -1
	}
	s.slotOrds = s.slotOrds[:0]
	s.vids = s.vids[:0]
	s.order = s.order[:0]
	s.prob = s.prob[:0]
	s.votes = s.votes[:0]
}

// ensureOrds sizes the ordinal-indexed tables for a Filter that has interned
// numVID VIDs so far. The counter tables only grow (ordinals are stable for
// the Filter's lifetime); the bitset masks are word-wise cleared for the new
// Match, or reallocated when the ordinal universe outgrew them.
func (s *scratch) ensureOrds(numVID int) {
	for len(s.slotByOrd) < numVID {
		s.slotByOrd = append(s.slotByOrd, -1)
	}
	for len(s.presence) < numVID {
		s.presence = append(s.presence, 0)
	}
	for len(s.seenScen) < numVID {
		s.seenScen = append(s.seenScen, 0)
	}
	if len(s.excl)*64 < numVID {
		s.excl = bitset.New(numVID)
	} else {
		s.excl.Clear()
	}
	if len(s.kept)*64 < numVID {
		s.kept = bitset.New(numVID)
	} else {
		s.kept.Clear()
	}
}

func (s *scratch) slots() int { return len(s.vids) }

// addSlot registers a surviving candidate VID and returns its slot.
func (s *scratch) addSlot(vid ids.VID, ord int32, dim int) int {
	n := len(s.vids)
	s.vids = append(s.vids, vid)
	s.slotOrds = append(s.slotOrds, ord)
	s.slotByOrd[ord] = int32(n)
	s.prob = append(s.prob, 1)
	s.votes = append(s.votes, 0)
	if n == len(s.accs) {
		s.accs = append(s.accs, feature.MeanAccum{})
	}
	s.accs[n].Reset(dim)
	return n
}

// rep returns the slot's representative vector within the slab.
func (s *scratch) rep(slot, dim int) feature.Vector {
	return feature.Vector(s.reps[slot*dim : (slot+1)*dim])
}

// Match finds the VID for EID e among the V-Scenarios of the given list,
// excluding already-matched VIDs (the rule-out of Theorem 4.1). The list is
// the EID's positive scenario list from set splitting.
func (f *Filter) Match(e ids.EID, list []scenario.ID, exclude map[ids.VID]bool) (Result, error) {
	res := Result{EID: e, VID: ids.NoVID, PerScenario: make([]ids.VID, len(list))}
	if len(list) == 0 {
		return res, nil
	}
	dim := f.cfg.Extractor.Dim
	s := f.pool.Get().(*scratch)
	defer f.pool.Put(s)
	s.reset(len(list))

	// Gather per-scenario feature matrices first — extraction interns every
	// detection's VID — then resolve the exclusion set to a dense ordinal
	// bitset.
	for i, id := range list {
		v, err := f.store.VChecked(id)
		if err != nil {
			return res, err
		}
		if v == nil {
			continue
		}
		entry := f.featuresFor(id, v, &s.xbuf)
		if entry != nil && entry.err != nil {
			return res, entry.err
		}
		s.scans[i].v = v
		if entry != nil {
			s.scans[i].m = entry.m
			s.scans[i].ords = entry.ords
		}
	}
	f.mu.Lock()
	s.ensureOrds(len(f.vidByOrd))
	//evlint:ignore maprange fills an ordinal-indexed membership mask; the mask is identical under any iteration order
	for vid, on := range exclude {
		if !on {
			continue
		}
		// A VID the Filter has never interned cannot appear in any
		// extracted scenario of this list; skipping it is exact.
		if ord, ok := f.vidOrd[vid]; ok {
			s.excl.Add(int(ord))
		}
	}
	f.mu.Unlock()

	// Candidate census: one pass over the detections counts, per VID
	// ordinal, how many listed scenarios sight each non-excluded candidate.
	// The monotone stamp dedups within a scenario without any clearing.
	detecting := 0
	for i := range s.scans {
		sc := &s.scans[i]
		if sc.v == nil || sc.m == nil {
			continue
		}
		if sc.m.Rows() > 0 {
			detecting++
		}
		s.stamp++
		stamp := s.stamp
		for d := range sc.v.Detections {
			ord := sc.ords[d]
			if s.excl.Has(int(ord)) || s.seenScen[ord] == stamp {
				continue
			}
			s.seenScen[ord] = stamp
			if s.presence[ord] == 0 {
				s.candOrds = append(s.candOrds, ord)
			}
			s.presence[ord]++
		}
	}
	if len(s.candOrds) == 0 {
		return res, nil
	}

	// Trajectory pruning: the matched VID is "the only one having the same
	// trajectory with this EID" (paper §IV-B2), and a VID absent from more
	// than half the detecting scenarios can never carry the majority vote —
	// so drop such candidates outright, before any of the per-candidate
	// feature work. This keeps the candidate pool from growing with crowd
	// density (where each scenario contributes a hundred bystander VIDs) and
	// saves their accumulations and feature comparisons. If nothing clears
	// the bar (severe VID missing), every candidate stays eligible.
	keptCount := 0
	if need := (detecting + 1) / 2; need > 1 {
		for _, ord := range s.candOrds {
			if int(s.presence[ord]) >= need {
				s.kept.Add(int(ord))
				keptCount++
			}
		}
	}
	if keptCount == 0 {
		for _, ord := range s.candOrds {
			s.kept.Add(int(ord))
		}
	}

	// Slot assignment and feature accumulation for the survivors only: each
	// kept candidate's detections stream into its running-mean accumulator
	// (same accumulation order as scanning, so the representative below is
	// exactly the mean of its detection features).
	for i := range s.scans {
		sc := &s.scans[i]
		if sc.v == nil || sc.m == nil {
			continue
		}
		for d := range sc.v.Detections {
			ord := sc.ords[d]
			if !s.kept.Has(int(ord)) {
				continue
			}
			slot := int(s.slotByOrd[ord])
			if slot < 0 {
				slot = s.addSlot(sc.v.Detections[d].VID, ord, dim)
			}
			s.accs[slot].Add(sc.m.Row(d))
		}
	}

	// One deterministic candidate order for every later decision loop:
	// error paths, votes, and runner-up selection must not depend on
	// discovery order.
	for slot := range s.vids {
		s.order = append(s.order, slot)
	}
	slices.SortFunc(s.order, func(a, b int) int { return cmp.Compare(s.vids[a], s.vids[b]) })

	// Representative feature per candidate, then trajectory probability
	// P(v) = Π_S max_d sim(rep_v, d) over the scenarios with detections.
	if cap(s.reps) < s.slots()*dim {
		s.reps = make([]float64, s.slots()*dim)
	}
	s.reps = s.reps[:s.slots()*dim]
	for _, slot := range s.order {
		if s.accs[slot].Count() == 0 {
			return res, fmt.Errorf("vfilter: representative for %s: feature: mean of no vectors", s.vids[slot])
		}
		s.accs[slot].MeanInto(s.rep(slot, dim))
	}
	var comparisons int64
	for i := range s.scans {
		sc := &s.scans[i]
		if sc.v == nil || sc.m == nil || sc.m.Rows() == 0 {
			continue
		}
		for _, slot := range s.order {
			s.prob[slot] *= feature.MaxSim(s.rep(slot, dim), sc.m)
			comparisons += int64(sc.m.Rows())
		}
	}
	f.comparisons.Add(comparisons)

	// Per-scenario vote: each scenario elects the present candidate with the
	// highest trajectory probability.
	voting := 0
	for i := range s.scans {
		sc := &s.scans[i]
		res.PerScenario[i] = ids.NoVID
		if sc.v == nil {
			continue
		}
		winner := ids.NoVID
		winSlot := -1
		bestProb := -1.0
		for d := range sc.v.Detections {
			slot := int(s.slotByOrd[sc.ords[d]])
			if slot < 0 {
				continue
			}
			if s.prob[slot] > bestProb || (s.prob[slot] == bestProb && s.vids[slot] < winner) {
				winner, winSlot, bestProb = s.vids[slot], slot, s.prob[slot]
			}
		}
		if winner != ids.NoVID {
			res.PerScenario[i] = winner
			s.votes[winSlot]++
			voting++
		}
	}
	if voting == 0 {
		return res, nil
	}

	// Majority decision; ties break toward the higher trajectory
	// probability, then lexicographically for determinism.
	best := ids.NoVID
	bestSlot := -1
	bestVotes := -1
	for _, slot := range s.order {
		vid := s.vids[slot]
		if s.votes[slot] == 0 {
			continue
		}
		switch n := s.votes[slot]; {
		case n > bestVotes:
			best, bestSlot, bestVotes = vid, slot, n
		case n == bestVotes:
			if s.prob[slot] > s.prob[bestSlot] ||
				(s.prob[slot] == s.prob[bestSlot] && vid < best) {
				best, bestSlot = vid, slot
			}
		}
	}
	res.VID = best
	res.Probability = s.prob[bestSlot]
	res.MajorityFrac = float64(bestVotes) / float64(voting)
	res.Acceptable = res.MajorityFrac >= f.cfg.AcceptMajority

	// Runner-up diagnostics: the strongest other candidate by trajectory
	// probability.
	res.Margin = math.Inf(1)
	bestOther := -1.0
	for _, slot := range s.order {
		vid := s.vids[slot]
		if vid == best {
			continue
		}
		if s.prob[slot] > bestOther || (s.prob[slot] == bestOther && vid < res.RunnerUp) {
			res.RunnerUp, bestOther = vid, s.prob[slot]
		}
	}
	if bestOther > 0 {
		res.Margin = res.Probability / bestOther
	}
	return res, nil
}

package vfilter

import (
	"math/rand"
	"testing"
	"testing/quick"

	"evmatching/internal/feature"
	"evmatching/internal/geo"
	"evmatching/internal/ids"
	"evmatching/internal/scenario"
)

// buildRandomWorld assembles a random store and target assignment.
func buildRandomWorld(seed int64) (*Filter, ids.EID, []scenario.ID, map[ids.VID]bool, error) {
	rng := rand.New(rand.NewSource(seed))
	layout, err := geo.NewGridLayout(geo.Square(geo.Pt(0, 0), 100), 4, 4)
	if err != nil {
		return nil, "", nil, nil, err
	}
	persons := 3 + rng.Intn(10)
	gallery, err := feature.NewGallery(rng, persons, 32)
	if err != nil {
		return nil, "", nil, nil, err
	}
	st := scenario.NewStore(layout)
	numScenarios := 1 + rng.Intn(5)
	var list []scenario.ID
	for w := 0; w < numScenarios; w++ {
		eids := make(map[ids.EID]scenario.Attr)
		var dets []scenario.Detection
		for p := 0; p < persons; p++ {
			if rng.Float64() < 0.5 {
				continue
			}
			eids[ids.EID(rune('a'+p))] = scenario.AttrInclusive
			if rng.Float64() < 0.15 {
				continue // missed detection
			}
			obs := gallery.Observe(p, 0.1, rng)
			dets = append(dets, scenario.Detection{
				VID:        ids.VIDLabel(p),
				Patch:      feature.EncodePatch(obs, 1, rng),
				TruePerson: p,
			})
		}
		e := &scenario.EScenario{Cell: geo.CellID(w % 16), Window: w, EIDs: eids}
		var v *scenario.VScenario
		if len(dets) > 0 {
			v = &scenario.VScenario{Cell: e.Cell, Window: w, Detections: dets}
		}
		id, err := st.Add(e, v)
		if err != nil {
			return nil, "", nil, nil, err
		}
		list = append(list, id)
	}
	exclude := map[ids.VID]bool{}
	for p := 0; p < persons; p++ {
		if rng.Float64() < 0.2 {
			exclude[ids.VIDLabel(p)] = true
		}
	}
	target := ids.EID(rune('a' + rng.Intn(persons)))
	f, err := New(st, Config{Extractor: feature.Extractor{Dim: 32}, AcceptMajority: 0.5})
	return f, target, list, exclude, err
}

// TestMatchResultWellFormed checks Match's output invariants on random
// worlds: the VID (if any) appears in some listed scenario and is not
// excluded; the probability and vote fraction are in range; per-scenario
// votes align with the list.
func TestMatchResultWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		filter, target, list, exclude, err := buildRandomWorld(seed)
		if err != nil {
			return false
		}
		res, err := filter.Match(target, list, exclude)
		if err != nil {
			return false
		}
		if len(res.PerScenario) != len(list) {
			return false
		}
		if res.Probability < 0 || res.Probability > 1 || res.MajorityFrac < 0 || res.MajorityFrac > 1 {
			return false
		}
		if res.VID == ids.NoVID {
			return true
		}
		if exclude[res.VID] {
			return false
		}
		stats := filter.Stats()
		if stats.Extractions < 0 || stats.Comparisons < 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestMatchDeterministicProperty: identical inputs give identical results,
// including on a fresh filter (the cache is semantics-free).
func TestMatchDeterministicProperty(t *testing.T) {
	f := func(seed int64) bool {
		f1, target, list, exclude, err := buildRandomWorld(seed)
		if err != nil {
			return false
		}
		f2, _, _, _, err := buildRandomWorld(seed)
		if err != nil {
			return false
		}
		r1, err := f1.Match(target, list, exclude)
		if err != nil {
			return false
		}
		r2, err := f2.Match(target, list, exclude)
		if err != nil {
			return false
		}
		return r1.VID == r2.VID && r1.MajorityFrac == r2.MajorityFrac
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// BenchmarkFilterMatch measures the Match hot path over a warmed extraction
// cache (one Match before the timer pays the one-time per-scenario
// extraction), so its time/op and allocs/op track the scoring and voting
// loops rather than feature extraction.
func BenchmarkFilterMatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	layout, err := geo.NewGridLayout(geo.Square(geo.Pt(0, 0), 100), 4, 4)
	if err != nil {
		b.Fatal(err)
	}
	gallery, err := feature.NewGallery(rng, 40, 64)
	if err != nil {
		b.Fatal(err)
	}
	st := scenario.NewStore(layout)
	var list []scenario.ID
	for w := 0; w < 4; w++ {
		eids := make(map[ids.EID]scenario.Attr)
		var dets []scenario.Detection
		for p := 0; p < 40; p++ {
			eids[ids.EID(rune('a'+p))] = scenario.AttrInclusive
			obs := gallery.Observe(p, 0.1, rng)
			dets = append(dets, scenario.Detection{
				VID:   ids.VIDLabel(p),
				Patch: feature.EncodePatch(obs, 1, rng),
			})
		}
		e := &scenario.EScenario{Cell: geo.CellID(w), Window: w, EIDs: eids}
		v := &scenario.VScenario{Cell: e.Cell, Window: w, Detections: dets}
		id, err := st.Add(e, v)
		if err != nil {
			b.Fatal(err)
		}
		list = append(list, id)
	}
	filter, err := New(st, Config{Extractor: feature.Extractor{Dim: 64, WorkFactor: 4}, AcceptMajority: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := filter.Match("a", list, nil); err != nil { // warm the extraction cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := filter.Match("a", list, nil); err != nil {
			b.Fatal(err)
		}
	}
}

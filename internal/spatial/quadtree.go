// Package spatial provides a point quadtree used to index located items —
// scenario centers, observations, detections — and answer the spatial range
// and nearest-neighbor queries that large-scale EV datasets need (the
// moving-object indexing substrate discussed in the paper's related work).
package spatial

import (
	"errors"
	"fmt"
	"math"

	"evmatching/internal/geo"
)

// ErrOutOfBounds reports an insert outside the tree's region.
var ErrOutOfBounds = errors.New("spatial: point outside tree bounds")

// Item is a located payload stored in the tree.
type Item struct {
	Pos  geo.Point
	Data any
}

// maxLeafItems is the node capacity before a split; small enough to keep
// range queries cheap, large enough to avoid deep trees for clustered data.
const maxLeafItems = 8

// maxDepth bounds subdivision so coincident points cannot recurse forever.
const maxDepth = 24

// Quadtree is a point-region quadtree over a fixed bounding rectangle.
// The zero value is not usable; construct with New.
type Quadtree struct {
	root *node
	size int
}

type node struct {
	bounds   geo.Rect
	depth    int
	items    []Item
	children *[4]*node // nil for leaves
}

// New creates an empty quadtree covering bounds.
func New(bounds geo.Rect) (*Quadtree, error) {
	if bounds.Width() <= 0 || bounds.Height() <= 0 {
		return nil, fmt.Errorf("spatial: empty bounds %+v", bounds)
	}
	return &Quadtree{root: &node{bounds: bounds}}, nil
}

// Len returns the number of stored items.
func (t *Quadtree) Len() int { return t.size }

// Bounds returns the region covered by the tree.
func (t *Quadtree) Bounds() geo.Rect { return t.root.bounds }

// Insert stores an item at p. Points on the outer max border are accepted by
// clamping, since region borders are a common place for simulated positions.
func (t *Quadtree) Insert(p geo.Point, data any) error {
	if !t.root.bounds.Contains(p) {
		clamped := t.root.bounds.Clamp(p)
		if clamped.Dist(p) > 1e-9 {
			return fmt.Errorf("%w: %v", ErrOutOfBounds, p)
		}
		p = nudgeInside(t.root.bounds, clamped)
	}
	t.root.insert(Item{Pos: p, Data: data})
	t.size++
	return nil
}

// nudgeInside moves a point on the max-open border infinitesimally inward.
func nudgeInside(r geo.Rect, p geo.Point) geo.Point {
	if p.X >= r.Max.X {
		p.X = math.Nextafter(r.Max.X, r.Min.X)
	}
	if p.Y >= r.Max.Y {
		p.Y = math.Nextafter(r.Max.Y, r.Min.Y)
	}
	return p
}

func (n *node) insert(it Item) {
	if n.children == nil {
		if len(n.items) < maxLeafItems || n.depth >= maxDepth {
			n.items = append(n.items, it)
			return
		}
		n.split()
	}
	n.child(it.Pos).insert(it)
}

// split converts a leaf into an internal node, redistributing its items.
func (n *node) split() {
	c := n.bounds.Center()
	var kids [4]*node
	quads := [4]geo.Rect{
		{Min: n.bounds.Min, Max: c},
		{Min: geo.Pt(c.X, n.bounds.Min.Y), Max: geo.Pt(n.bounds.Max.X, c.Y)},
		{Min: geo.Pt(n.bounds.Min.X, c.Y), Max: geo.Pt(c.X, n.bounds.Max.Y)},
		{Min: c, Max: n.bounds.Max},
	}
	for i := range kids {
		kids[i] = &node{bounds: quads[i], depth: n.depth + 1}
	}
	n.children = &kids
	items := n.items
	n.items = nil
	for _, it := range items {
		n.child(it.Pos).insert(it)
	}
}

// child returns the quadrant leaf for p; p is assumed inside n.bounds.
func (n *node) child(p geo.Point) *node {
	c := n.bounds.Center()
	idx := 0
	if p.X >= c.X {
		idx++
	}
	if p.Y >= c.Y {
		idx += 2
	}
	return n.children[idx]
}

// Query appends all items whose position lies within r (Min-closed,
// Max-open) and returns the result.
func (t *Quadtree) Query(r geo.Rect) []Item {
	var out []Item
	t.root.query(r, &out)
	return out
}

func (n *node) query(r geo.Rect, out *[]Item) {
	if !n.bounds.Intersects(r) {
		return
	}
	for _, it := range n.items {
		if r.Contains(it.Pos) {
			*out = append(*out, it)
		}
	}
	if n.children != nil {
		for _, c := range n.children {
			c.query(r, out)
		}
	}
}

// QueryRadius returns all items within dist of center.
func (t *Quadtree) QueryRadius(center geo.Point, dist float64) []Item {
	box := geo.Rect{
		Min: geo.Pt(center.X-dist, center.Y-dist),
		Max: geo.Pt(center.X+dist+1e-12, center.Y+dist+1e-12),
	}
	boxed := t.Query(box)
	out := boxed[:0]
	for _, it := range boxed {
		if it.Pos.Dist(center) <= dist {
			out = append(out, it)
		}
	}
	return out
}

// Nearest returns the stored item closest to p and true, or a zero Item and
// false if the tree is empty.
func (t *Quadtree) Nearest(p geo.Point) (Item, bool) {
	if t.size == 0 {
		return Item{}, false
	}
	best := Item{}
	bestDist := math.Inf(1)
	t.root.nearest(p, &best, &bestDist)
	return best, true
}

func (n *node) nearest(p geo.Point, best *Item, bestDist *float64) {
	if rectDist(n.bounds, p) > *bestDist {
		return
	}
	for _, it := range n.items {
		if d := it.Pos.Dist(p); d < *bestDist {
			*best, *bestDist = it, d
		}
	}
	if n.children == nil {
		return
	}
	// Visit the quadrant containing p first to tighten the bound early.
	first := n.child(p)
	first.nearest(p, best, bestDist)
	for _, c := range n.children {
		if c != first {
			c.nearest(p, best, bestDist)
		}
	}
}

// rectDist returns the distance from p to rectangle r (0 if inside).
func rectDist(r geo.Rect, p geo.Point) float64 {
	dx := math.Max(math.Max(r.Min.X-p.X, p.X-r.Max.X), 0)
	dy := math.Max(math.Max(r.Min.Y-p.Y, p.Y-r.Max.Y), 0)
	return math.Hypot(dx, dy)
}

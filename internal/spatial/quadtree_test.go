package spatial

import (
	"math"
	"math/rand"
	"testing"

	"evmatching/internal/geo"
)

func newTestTree(t *testing.T, side float64) *Quadtree {
	t.Helper()
	qt, err := New(geo.Square(geo.Pt(0, 0), side))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return qt
}

func TestNewValidation(t *testing.T) {
	if _, err := New(geo.Rect{}); err == nil {
		t.Error("want error for empty bounds")
	}
}

func TestInsertAndLen(t *testing.T) {
	qt := newTestTree(t, 100)
	for i := 0; i < 50; i++ {
		p := geo.Pt(float64(i*2), float64(i))
		if err := qt.Insert(p, i); err != nil {
			t.Fatalf("Insert(%v): %v", p, err)
		}
	}
	if qt.Len() != 50 {
		t.Errorf("Len = %d, want 50", qt.Len())
	}
}

func TestInsertOutOfBounds(t *testing.T) {
	qt := newTestTree(t, 100)
	if err := qt.Insert(geo.Pt(150, 50), nil); err == nil {
		t.Error("want error for out-of-bounds insert")
	}
	// The max border is accepted by nudging inward.
	if err := qt.Insert(geo.Pt(100, 100), "corner"); err != nil {
		t.Errorf("max-border insert: %v", err)
	}
	if got, ok := qt.Nearest(geo.Pt(99, 99)); !ok || got.Data != "corner" {
		t.Errorf("Nearest after border insert = %+v, %v", got, ok)
	}
}

func TestQueryMatchesBruteForce(t *testing.T) {
	qt := newTestTree(t, 1000)
	rng := rand.New(rand.NewSource(11))
	pts := make([]geo.Point, 500)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		if err := qt.Insert(pts[i], i); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 50; trial++ {
		r := geo.NewRect(
			geo.Pt(rng.Float64()*1000, rng.Float64()*1000),
			geo.Pt(rng.Float64()*1000, rng.Float64()*1000),
		)
		want := map[int]bool{}
		for i, p := range pts {
			if r.Contains(p) {
				want[i] = true
			}
		}
		got := qt.Query(r)
		if len(got) != len(want) {
			t.Fatalf("Query returned %d items, want %d", len(got), len(want))
		}
		for _, it := range got {
			idx, ok := it.Data.(int)
			if !ok || !want[idx] {
				t.Fatalf("Query returned unexpected item %+v", it)
			}
		}
	}
}

func TestQueryRadiusMatchesBruteForce(t *testing.T) {
	qt := newTestTree(t, 100)
	rng := rand.New(rand.NewSource(5))
	pts := make([]geo.Point, 300)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64()*100, rng.Float64()*100)
		if err := qt.Insert(pts[i], i); err != nil {
			t.Fatal(err)
		}
	}
	center := geo.Pt(50, 50)
	for _, radius := range []float64{0, 5, 20, 80, 200} {
		want := 0
		for _, p := range pts {
			if p.Dist(center) <= radius {
				want++
			}
		}
		if got := len(qt.QueryRadius(center, radius)); got != want {
			t.Errorf("QueryRadius(%v) = %d items, want %d", radius, got, want)
		}
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	qt := newTestTree(t, 1000)
	rng := rand.New(rand.NewSource(99))
	pts := make([]geo.Point, 400)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		if err := qt.Insert(pts[i], i); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 100; trial++ {
		q := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		bestDist := math.Inf(1)
		for _, p := range pts {
			if d := p.Dist(q); d < bestDist {
				bestDist = d
			}
		}
		got, ok := qt.Nearest(q)
		if !ok {
			t.Fatal("Nearest on non-empty tree returned !ok")
		}
		if d := got.Pos.Dist(q); math.Abs(d-bestDist) > 1e-9 {
			t.Fatalf("Nearest dist = %v, brute force = %v", d, bestDist)
		}
	}
}

func TestNearestEmpty(t *testing.T) {
	qt := newTestTree(t, 10)
	if _, ok := qt.Nearest(geo.Pt(5, 5)); ok {
		t.Error("Nearest on empty tree should return false")
	}
}

func TestCoincidentPointsDoNotRecurseForever(t *testing.T) {
	qt := newTestTree(t, 10)
	p := geo.Pt(3, 3)
	for i := 0; i < 200; i++ {
		if err := qt.Insert(p, i); err != nil {
			t.Fatal(err)
		}
	}
	if qt.Len() != 200 {
		t.Errorf("Len = %d, want 200", qt.Len())
	}
	if got := qt.Query(geo.Square(geo.Pt(2, 2), 2)); len(got) != 200 {
		t.Errorf("Query found %d coincident items, want 200", len(got))
	}
}

func BenchmarkQuadtreeInsert(b *testing.B) {
	bounds := geo.Square(geo.Pt(0, 0), 1000)
	rng := rand.New(rand.NewSource(1))
	pts := make([]geo.Point, 4096)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qt, _ := New(bounds)
		for _, p := range pts {
			_ = qt.Insert(p, nil)
		}
	}
}

func BenchmarkQuadtreeQuery(b *testing.B) {
	qt, _ := New(geo.Square(geo.Pt(0, 0), 1000))
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		_ = qt.Insert(geo.Pt(rng.Float64()*1000, rng.Float64()*1000), i)
	}
	r := geo.Square(geo.Pt(400, 400), 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = qt.Query(r)
	}
}

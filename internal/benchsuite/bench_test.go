package benchsuite

import (
	"fmt"
	"testing"

	"evmatching/internal/core"
)

// BenchmarkMatchSSParallel is the end-to-end gate benchmark for the batched
// parallel V stage, pinned at four workers so CI numbers do not depend on the
// runner's core count. cmd/benchdiff compares its -count medians between the
// PR head and the merge base under the noise-adaptive threshold.
func BenchmarkMatchSSParallel(b *testing.B) {
	matchBenchN(core.Options{
		Algorithm: core.AlgorithmSS,
		Mode:      core.ModeParallel,
		Workers:   4,
	}, 80)(b)
}

// BenchmarkMatchSSSerial is a shortened serial reference run (half the target
// sample) so bench-smoke also watches the un-batched baseline path without
// doubling the job's wall clock.
func BenchmarkMatchSSSerial(b *testing.B) {
	matchBenchN(core.Options{
		Algorithm: core.AlgorithmSS,
		Mode:      core.ModeSerial,
	}, 40)(b)
}

// BenchmarkMatchSSSpill is BenchmarkMatchSSParallel under a 4 KiB shuffle
// budget: every reducer bucket spills to sorted runs and k-way merges back
// at reduce time. Its delta against MatchSSParallel is the price of the
// external-merge path; the spill_kb metric proves the run went out of core.
func BenchmarkMatchSSSpill(b *testing.B) {
	matchSSSpillBench()(b)
}

// BenchmarkStreamReplay watches the streaming path end to end: replaying a
// pre-flattened observation log through a fresh engine and finalizing. It
// lives here rather than in internal/stream because bench-smoke also runs on
// the merge base, where only this package's benchmarks are guaranteed to
// exist.
func BenchmarkStreamReplay(b *testing.B) {
	streamReplayBench()(b)
}

// BenchmarkStreamReplayShards sweeps the sharded router over shard counts,
// timing ingest through Flush (Finalize's constant-work verification run is
// excluded — it is identical at every N). The 4-shard/1-shard throughput
// ratio is the scaling gate for the sharded ingest path: per-shard windowing
// and seal-time feature extraction must parallelize, leaving only the
// (window, cell)-ordered fold serial. The ratio is bounded by available
// cores — on a GOMAXPROCS=1 runner the sweep degenerates to measuring
// sharding overhead (expect a flat curve there, not a regression).
func BenchmarkStreamReplayShards(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), streamReplayShardsBench(shards))
	}
}

// BenchmarkStreamReplayRemoteShards is the same replay through separate
// worker processes (the bench binary re-execs itself as evshardd via
// TestMain's sentinel). Compared against BenchmarkStreamReplayShards at the
// same count, the delta prices the cross-process tax — serialization, rpc
// round-trips, supervisor bookkeeping — which BenchmarkShardRPCSerialize
// breaks out in isolation.
func BenchmarkStreamReplayRemoteShards(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), streamReplayRemoteShardsBench(workers))
	}
}

// BenchmarkShardRPCSerialize prices one gob round-trip of a representative
// sealed-round ApplyReply — the per-emission wire cost inside the remote
// replay numbers.
func BenchmarkShardRPCSerialize(b *testing.B) {
	shardRPCSerializeBench()(b)
}

// BenchmarkMatchSSBlocked is the asymptote gate for the spatiotemporal
// blocking index (DESIGN.md §13): warm SS matches over the cached scale
// worlds, blocked versus exhaustive, with the matcher (and thus the index
// build) outside the timer. On the sparse-city 100k world the blocked
// split_ms metric must sit far below the exhaustive one — the committed
// baseline records ≥5× — while the saturated dense world bounds the
// bookkeeping overhead: blocked may regress exhaustive by at most ~10%
// there. TestScaleSmoke asserts both ratios with slacker thresholds; this
// benchmark feeds benchdiff and BENCH_baseline.json with the numbers.
func BenchmarkMatchSSBlocked(b *testing.B) {
	b.Run("sparse-100k", matchSSScaleBench(sparseWorld, scaleSparseTargets, false))
	b.Run("sparse-100k-exhaustive", matchSSScaleBench(sparseWorld, scaleSparseTargets, true))
	b.Run("dense", matchSSScaleBench(denseWorld, 0, false))
	b.Run("dense-exhaustive", matchSSScaleBench(denseWorld, 0, true))
}

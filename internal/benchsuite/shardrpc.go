package benchsuite

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"evmatching/internal/feature"
	"evmatching/internal/geo"
	"evmatching/internal/ids"
	"evmatching/internal/scenario"
	"evmatching/internal/shardrpc"
	"evmatching/internal/stream"
)

// WorkerSentinelEnv marks a process as a shard worker re-exec. The remote
// replay benchmarks spawn the current binary as their evshardd: both hosts
// of this suite — the package's TestMain and cmd/evbench — check the
// sentinel first and hand the process to shardrpc.WorkerMain before any
// normal startup, exactly like the shardrpc package tests.
const WorkerSentinelEnv = "EVSHARD_WORKER"

// IsWorkerReexec reports whether this process was spawned as a shard
// worker and should run WorkerExitCode instead of its normal entrypoint.
func IsWorkerReexec() bool {
	return os.Getenv(WorkerSentinelEnv) == "1"
}

// WorkerExitCode runs the evshardd worker loop in-place and returns its
// exit code. Callers os.Exit with it.
func WorkerExitCode() int {
	return shardrpc.WorkerMain(os.Args[1:], os.Stdin, os.Stdout, os.Stderr)
}

// streamReplayRemoteShardsBench replays the sharded-stream workload through
// N separate worker processes, timing ingest through Flush like
// streamReplayShardsBench — so the delta against StreamReplayShards at the
// same shard count is exactly the cross-process tax: gob serialization, rpc
// round-trips, and supervisor bookkeeping. One supervisor is shared across
// all b.N iterations — Configure resets the hosted windower, so worker
// processes are reused and process spawn is amortized out of the steady
// state (the first iteration still pays it, as a real deployment would).
func streamReplayRemoteShardsBench(workers int) func(b *testing.B) {
	return func(b *testing.B) {
		exe, err := os.Executable()
		if err != nil {
			b.Fatal(err)
		}
		scfg, obs := streamReplayShardsWorkload(b)
		sup := shardrpc.NewSupervisor(shardrpc.SupervisorConfig{
			Command: []string{exe},
			Env:     []string{WorkerSentinelEnv + "=1"},
		})
		defer sup.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r, err := stream.NewRouter(stream.RouterConfig{
				Config: scfg, Shards: workers, Runner: sup,
			})
			if err != nil {
				b.Fatal(err)
			}
			for _, o := range obs {
				if _, err := r.Ingest(o); err != nil {
					b.Fatal(err)
				}
			}
			if err := r.Flush(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(len(r.Resolutions())), "resolutions")
			if err := r.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		b.StopTimer()
		if st := sup.Stats(); st.Fallbacks > 0 {
			b.Fatalf("remote bench fell back in-process %d times (worker spawn broken?)", st.Fallbacks)
		}
	}
}

// shardRPCSerializeBench isolates the wire cost the remote replays pay per
// emission: a gob encode+decode round-trip of a representative ApplyReply —
// one sealed round of four (window, cell) closures, eight detections and
// eight EIDs each, with the extracted 64-dim feature matrix. This is an
// upper bound on the steady-state cost (net/rpc reuses one gob stream per
// connection, so type descriptors travel once, not per reply as here).
// wire_bytes reports the encoded payload size.
func shardRPCSerializeBench() func(b *testing.B) {
	return func(b *testing.B) {
		rng := rand.New(rand.NewSource(9))
		const dets, dim = 8, 64
		sealed := make([]stream.ShardSealed, 4)
		for i := range sealed {
			s := stream.ShardSealed{Window: i, Cell: geo.CellID(3 + i), FeatDim: dim}
			for j := 0; j < dets; j++ {
				s.EIDs = append(s.EIDs, stream.BucketEID{
					EID: ids.EID(fmt.Sprintf("bench-e%02d", j)), Attr: scenario.AttrInclusive,
				})
				s.Dets = append(s.Dets, scenario.Detection{
					VID:        ids.VID(fmt.Sprintf("bench-v%02d-%d", j, i)),
					Patch:      feature.EncodePatch(randomUnit(rng, dim), 1, rng),
					TruePerson: j,
				})
			}
			s.Feat = make([]float64, dets*dim)
			for k := range s.Feat {
				s.Feat[k] = rng.NormFloat64()
			}
			sealed[i] = s
		}
		reply := shardrpc.ApplyReply{Outs: []stream.ShardOut{{
			Kind: stream.ShardOutRound, Round: 1, Target: 1, MaxTS: 1_000, Sealed: sealed,
		}}}
		var size int
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(&reply); err != nil {
				b.Fatal(err)
			}
			size = buf.Len()
			var dec shardrpc.ApplyReply
			if err := gob.NewDecoder(&buf).Decode(&dec); err != nil {
				b.Fatal(err)
			}
			if len(dec.Outs) != 1 {
				b.Fatalf("round-trip lost emissions: got %d", len(dec.Outs))
			}
		}
		b.ReportMetric(float64(size), "wire_bytes")
	}
}

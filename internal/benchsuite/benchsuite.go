// Package benchsuite runs the repository's reference benchmarks through
// testing.Benchmark and reports them as machine-readable results: time/op,
// allocs/op, bytes/op, plus the paper-shape metrics (selected scenarios,
// accuracy) for the end-to-end match workloads. cmd/evbench -json uses it to
// produce BENCH_baseline.json, the file perf PRs are judged against.
//
// The end-to-end workloads mirror bench_test.go exactly (same dataset config,
// same seeded target sample) so a suite result is directly comparable with
// `go test -bench BenchmarkMatch` output.
package benchsuite

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"

	"evmatching/internal/core"
	"evmatching/internal/dataset"
	"evmatching/internal/feature"
	"evmatching/internal/stream"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// File is the on-disk JSON shape of a baseline.
type File struct {
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Results   []Result `json:"results"`
}

type benchmark struct {
	name string
	fn   func(b *testing.B)
}

// matchBench mirrors bench_test.go's benchMatch: quick-scale 200-person
// dataset, 80 seeded targets, matcher constructed inside the timed loop.
func matchBench(alg core.Algorithm, mode core.Mode) func(b *testing.B) {
	return matchBenchN(core.Options{Algorithm: alg, Mode: mode}, 80)
}

// matchBenchN is the generalized form: full Options control (worker count,
// batch size) and a configurable target-sample size so the CI entry points
// can pin a worker count or run a shortened workload.
func matchBenchN(opts core.Options, numTargets int) func(b *testing.B) {
	return func(b *testing.B) {
		cfg := dataset.DefaultConfig()
		cfg.NumPersons = 200
		cfg.Density = 15
		cfg.NumWindows = 32
		ds, err := dataset.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		targets := ds.SampleEIDs(numTargets, rand.New(rand.NewSource(5)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, err := core.New(ds, opts)
			if err != nil {
				b.Fatal(err)
			}
			rep, err := m.Match(context.Background(), targets)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(rep.SelectedScenarios), "selected")
			b.ReportMetric(rep.Accuracy(ds.TruthVID)*100, "acc%")
			if rep.Spill.Spilled() {
				b.ReportMetric(float64(rep.Spill.BytesSpilled)/1024, "spill_kb")
			}
		}
	}
}

// matchSSSpillBench is the out-of-core overhead benchmark: the exact
// MatchSSParallel workload (same dataset, targets, worker pin) squeezed
// under a shuffle budget small enough that every E/V-stage reducer bucket
// spills to sorted runs and k-way merges back (DESIGN.md §14). Comparing
// its time/op against MatchSSParallel prices the external-merge path; the
// spill_kb metric proves the run actually went out of core.
func matchSSSpillBench() func(b *testing.B) {
	return matchBenchN(core.Options{
		Algorithm: core.AlgorithmSS,
		Mode:      core.ModeParallel,
		Workers:   4,
		MemBudget: 4 << 10,
	}, 80)
}

// scaleSparseTargets is the target-sample size the sparse-world blocking
// benchmarks and the scale smoke test share.
const scaleSparseTargets = 32

// Scale worlds for the blocking benchmarks, generated once per process and
// shared between the registry entries, the go-test benchmarks, and the scale
// smoke test: the sparse-city 100k preset alone takes several seconds to
// generate, and every consumer wants the identical world anyway.
var (
	sparseOnce sync.Once
	sparseDS   *dataset.Dataset
	sparseErr  error

	denseOnce sync.Once
	denseDS   *dataset.Dataset
	denseErr  error
)

// sparseWorld returns the shared sparse-city 100k-EID world — the regime the
// blocking index targets, where a target co-occurs with a vanishing fraction
// of the population.
func sparseWorld() (*dataset.Dataset, error) {
	sparseOnce.Do(func() {
		cfg, err := dataset.ScalePreset(dataset.PresetSparseCity)
		if err != nil {
			sparseErr = err
			return
		}
		sparseDS, sparseErr = dataset.Generate(cfg)
	})
	return sparseDS, sparseErr
}

// denseWorld returns the shared dense worst case: crowded cells and a
// universal target set, so the live signature saturates and pruning almost
// never fires — the configuration where blocking must cost nearly nothing.
// (The dense-core 1M preset itself needs ~a GB; this is its CI-sized proxy
// with the same saturation property.)
func denseWorld() (*dataset.Dataset, error) {
	denseOnce.Do(func() {
		cfg := dataset.DefaultConfig()
		cfg.NumPersons = 2000
		cfg.Density = 100
		cfg.NumWindows = 32
		cfg.FeatureDim = 16
		denseDS, denseErr = dataset.Generate(cfg)
	})
	return denseDS, denseErr
}

// matchSSScaleBench times warm SS matches over a cached scale world. Unlike
// matchBenchN, the matcher is constructed outside the timed loop and warmed
// with one untimed Match: the blocking index is built lazily on first use and
// cached on the matcher, and the resident-server shape (build once, match
// many) is exactly the deployment the index exists for. numTargets ≤ 0 means
// universal matching. The mean E-stage time is reported as the "split_ms"
// metric — the stage the blocking index accelerates — next to the usual
// whole-match time/op.
func matchSSScaleBench(world func() (*dataset.Dataset, error), numTargets int, disable bool) func(b *testing.B) {
	return func(b *testing.B) {
		ds, err := world()
		if err != nil {
			b.Fatal(err)
		}
		targets := ds.AllEIDs()
		if numTargets > 0 {
			targets = ds.SampleEIDs(numTargets, rand.New(rand.NewSource(5)))
		}
		m, err := core.New(ds, core.Options{
			Algorithm:       core.AlgorithmSS,
			Mode:            core.ModeSerial,
			WorkFactor:      1,
			DisableBlocking: disable,
		})
		if err != nil {
			b.Fatal(err)
		}
		warm, err := m.Match(context.Background(), targets)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		var splitNS int64
		for i := 0; i < b.N; i++ {
			rep, err := m.Match(context.Background(), targets)
			if err != nil {
				b.Fatal(err)
			}
			splitNS += rep.ETime.Nanoseconds()
			if rep.Fingerprint() != warm.Fingerprint() {
				b.Fatal("fingerprint drifted between warm and timed matches")
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(splitNS)/float64(b.N)/1e6, "split_ms")
	}
}

// streamReplayBench replays a flattened observation log through the
// incremental stream engine and finalizes — the end-to-end cost of the
// streaming path: event-time windowing, incremental split, early V stage,
// and the batch-equivalent verification run. The log is flattened once
// outside the timer; each iteration replays it through a fresh engine.
func streamReplayBench() func(b *testing.B) {
	return func(b *testing.B) {
		cfg := dataset.DefaultConfig()
		cfg.NumPersons = 100
		cfg.Density = 10
		cfg.NumWindows = 12
		ds, err := dataset.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		_, obs, err := stream.EventsFromDataset(ds, 1_000, 5)
		if err != nil {
			b.Fatal(err)
		}
		scfg := stream.Config{
			Targets:    ds.SampleEIDs(20, rand.New(rand.NewSource(5))),
			WindowMS:   1_000,
			LatenessMS: 250,
			Dim:        ds.Config.DescriptorDim(),
			Seed:       5,
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e, err := stream.NewEngine(scfg)
			if err != nil {
				b.Fatal(err)
			}
			for _, o := range obs {
				if _, err := e.Ingest(o); err != nil {
					b.Fatal(err)
				}
			}
			rep, err := e.Finalize(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(e.Resolutions())), "resolutions")
			b.ReportMetric(rep.Accuracy(ds.TruthVID)*100, "acc%")
		}
	}
}

// streamReplayShardsWorkload builds the flattened log and engine config the
// sharded replay benchmarks share — the same dataset family and target sample
// as streamReplayBench, so the 1-shard entry is directly comparable with the
// unsharded StreamReplay.
func streamReplayShardsWorkload(b *testing.B) (stream.Config, []stream.Observation) {
	cfg := dataset.DefaultConfig()
	cfg.NumPersons = 100
	cfg.Density = 10
	cfg.NumWindows = 12
	ds, err := dataset.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	_, obs, err := stream.EventsFromDataset(ds, 1_000, 5)
	if err != nil {
		b.Fatal(err)
	}
	return stream.Config{
		Targets:    ds.SampleEIDs(20, rand.New(rand.NewSource(5))),
		WindowMS:   1_000,
		LatenessMS: 250,
		Dim:        ds.Config.DescriptorDim(),
		Seed:       5,
	}, obs
}

// streamReplayShardsBench replays the log through an N-shard router, timing
// ingest through Flush. Finalize — the constant-work batch verification run,
// identical at every shard count — stays outside the timer, so the measured
// throughput isolates exactly what sharding parallelizes: per-shard windowing
// and seal-time feature extraction.
func streamReplayShardsBench(shards int) func(b *testing.B) {
	return func(b *testing.B) {
		scfg, obs := streamReplayShardsWorkload(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r, err := stream.NewRouter(stream.RouterConfig{Config: scfg, Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			for _, o := range obs {
				if _, err := r.Ingest(o); err != nil {
					b.Fatal(err)
				}
			}
			if err := r.Flush(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(len(r.Resolutions())), "resolutions")
			if err := r.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

func randomUnit(rng *rand.Rand, dim int) feature.Vector {
	v := make(feature.Vector, dim)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v.Normalize()
}

func benchmarks() []benchmark {
	return []benchmark{
		{"MatchSSSerial", matchBench(core.AlgorithmSS, core.ModeSerial)},
		{"MatchSSParallel", matchBench(core.AlgorithmSS, core.ModeParallel)},
		{"MatchSSSpill", matchSSSpillBench()},
		{"MatchEDPSerial", matchBench(core.AlgorithmEDP, core.ModeSerial)},
		{"MatchSSBlockedSparse", matchSSScaleBench(sparseWorld, scaleSparseTargets, false)},
		{"MatchSSBlockedSparseExhaustive", matchSSScaleBench(sparseWorld, scaleSparseTargets, true)},
		{"MatchSSBlockedDense", matchSSScaleBench(denseWorld, 0, false)},
		{"MatchSSBlockedDenseExhaustive", matchSSScaleBench(denseWorld, 0, true)},
		{"StreamReplay", streamReplayBench()},
		{"StreamReplayShards1", streamReplayShardsBench(1)},
		{"StreamReplayShards4", streamReplayShardsBench(4)},
		{"StreamReplayRemoteShards1", streamReplayRemoteShardsBench(1)},
		{"StreamReplayRemoteShards2", streamReplayRemoteShardsBench(2)},
		{"StreamReplayRemoteShards4", streamReplayRemoteShardsBench(4)},
		{"ShardRPCSerialize", shardRPCSerializeBench()},
		{"Sim", func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x, y := randomUnit(rng, 64), randomUnit(rng, 64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := feature.Sim(x, y); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"MaxSimMatrix", func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			vs := make([]feature.Vector, 16)
			for i := range vs {
				vs[i] = randomUnit(rng, 64)
			}
			m, err := feature.MatrixFrom(vs)
			if err != nil {
				b.Fatal(err)
			}
			rep := randomUnit(rng, 64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				feature.MaxSim(rep, m)
			}
		}},
		{"MeanAccum", func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			vs := make([]feature.Vector, 8)
			for i := range vs {
				vs[i] = randomUnit(rng, 64)
			}
			var acc feature.MeanAccum
			dst := make(feature.Vector, 64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				acc.Reset(64)
				for _, v := range vs {
					acc.Add(v)
				}
				acc.MeanInto(dst)
			}
		}},
		{"Extract", func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			patch := feature.EncodePatch(randomUnit(rng, 64), 1, rng)
			ex := feature.Extractor{Dim: 64, WorkFactor: 4}
			dst := make(feature.Vector, 64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ex.ExtractInto(patch, dst); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}

// Run executes every suite benchmark and returns the populated File.
// Progress lines go to logw when non-nil.
func Run(logw io.Writer) (*File, error) {
	f := &File{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	for _, bm := range benchmarks() {
		if logw != nil {
			fmt.Fprintf(logw, "bench %s...\n", bm.name)
		}
		r := testing.Benchmark(bm.fn)
		if r.N == 0 {
			return nil, fmt.Errorf("benchsuite: %s did not run (benchmark failed)", bm.name)
		}
		res := Result{
			Name:        bm.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if len(r.Extra) > 0 {
			res.Metrics = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				res.Metrics[k] = v
			}
		}
		f.Results = append(f.Results, res)
		if logw != nil {
			fmt.Fprintf(logw, "bench %s: %d iters, %.0f ns/op, %d allocs/op\n",
				bm.name, res.Iterations, res.NsPerOp, res.AllocsPerOp)
		}
	}
	sort.Slice(f.Results, func(i, j int) bool { return f.Results[i].Name < f.Results[j].Name })
	return f, nil
}

// WriteJSON marshals the file with stable formatting.
func (f *File) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadJSON parses a baseline file.
func ReadJSON(r io.Reader) (*File, error) {
	var f File
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("benchsuite: parse baseline: %w", err)
	}
	return &f, nil
}

// Lookup returns the named result, or false.
func (f *File) Lookup(name string) (Result, bool) {
	for _, r := range f.Results {
		if r.Name == name {
			return r, true
		}
	}
	return Result{}, false
}

package benchsuite

import (
	"os"
	"testing"
)

// TestMain routes worker re-execs: the remote replay benchmarks spawn this
// test binary as their evshardd, marked by the sentinel env var, and such a
// process must run the worker loop instead of the test suite.
func TestMain(m *testing.M) {
	if IsWorkerReexec() {
		os.Exit(WorkerExitCode())
	}
	os.Exit(m.Run())
}

package benchsuite

import (
	"bytes"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	in := &File{
		GoVersion: "go1.24.0",
		GOOS:      "linux",
		GOARCH:    "amd64",
		NumCPU:    8,
		Results: []Result{
			{Name: "MatchSSSerial", Iterations: 120, NsPerOp: 1.01e7,
				AllocsPerOp: 15702, BytesPerOp: 2745816,
				Metrics: map[string]float64{"selected": 100, "acc%": 97.5}},
			{Name: "Sim", Iterations: 1e6, NsPerOp: 35.3},
		},
	}
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 || out.GoVersion != in.GoVersion {
		t.Fatalf("round trip mangled file: %+v", out)
	}
	got, ok := out.Lookup("MatchSSSerial")
	if !ok {
		t.Fatal("Lookup(MatchSSSerial) missing")
	}
	if got.AllocsPerOp != 15702 || got.Metrics["acc%"] != 97.5 {
		t.Errorf("Lookup returned %+v", got)
	}
	if _, ok := out.Lookup("Nope"); ok {
		t.Error("Lookup(Nope) should miss")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{not json")); err == nil {
		t.Error("want parse error")
	}
}

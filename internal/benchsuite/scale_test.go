package benchsuite

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"evmatching/internal/core"
	"evmatching/internal/dataset"
)

// scaleMatch builds a matcher over a scale world, warms it with one match —
// the first match builds the blocking index and pays cold caches — and
// returns the second, warm report.
func scaleMatch(t *testing.T, ds *dataset.Dataset, numTargets int, disable bool) *core.Report {
	t.Helper()
	targets := ds.AllEIDs()
	if numTargets > 0 {
		targets = ds.SampleEIDs(numTargets, rand.New(rand.NewSource(5)))
	}
	m, err := core.New(ds, core.Options{
		Algorithm:       core.AlgorithmSS,
		Mode:            core.ModeSerial,
		WorkFactor:      1,
		DisableBlocking: disable,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Match(context.Background(), targets); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Match(context.Background(), targets)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestScaleSmoke is the CI scale gate: the sparse-city 100k preset runs end
// to end — generation, blocking-index build, blocked and exhaustive matches —
// and the asymptote claim of DESIGN.md §13 is asserted directly: the blocked
// E stage must beat the exhaustive one by a wide margin on the sparse world
// (the committed baseline records ≥5×; the test demands ≥2.5× to absorb CI
// noise) while staying bit-identical, and the saturated dense world bounds
// the pruning bookkeeping (≤1.35× the exhaustive E stage here, ≤10% in the
// calmer committed baseline). It runs in -short mode by design — the
// scale-smoke CI job selects it with -run under a wall-clock budget.
func TestScaleSmoke(t *testing.T) {
	t.Run("sparse-100k", func(t *testing.T) {
		ds, err := sparseWorld()
		if err != nil {
			t.Fatal(err)
		}
		if n := len(ds.AllEIDs()); n < 50_000 {
			t.Fatalf("sparse preset produced only %d EIDs; not a scale world", n)
		}
		start := time.Now()
		blocked := scaleMatch(t, ds, scaleSparseTargets, false)
		exhaustive := scaleMatch(t, ds, scaleSparseTargets, true)
		t.Logf("sparse-100k: blocked E=%v exhaustive E=%v (matches took %v)",
			blocked.ETime, exhaustive.ETime, time.Since(start))

		if got, want := blocked.Fingerprint(), exhaustive.Fingerprint(); got != want {
			t.Fatalf("blocked fingerprint %s != exhaustive %s", got, want)
		}
		if blocked.BlockPruned == 0 {
			t.Error("sparse world pruned nothing; blocking index inert")
		}
		if ratio := float64(exhaustive.ETime) / float64(blocked.ETime); ratio < 2.5 {
			t.Errorf("sparse split-stage speedup %.1fx, want >= 2.5x (baseline records >= 5x)", ratio)
		}
	})

	t.Run("dense-bounded", func(t *testing.T) {
		ds, err := denseWorld()
		if err != nil {
			t.Fatal(err)
		}
		blocked := scaleMatch(t, ds, 0, false)
		exhaustive := scaleMatch(t, ds, 0, true)
		t.Logf("dense: blocked E=%v exhaustive E=%v", blocked.ETime, exhaustive.ETime)

		if got, want := blocked.Fingerprint(), exhaustive.Fingerprint(); got != want {
			t.Fatalf("blocked fingerprint %s != exhaustive %s", got, want)
		}
		if ratio := float64(blocked.ETime) / float64(exhaustive.ETime); ratio > 1.35 {
			t.Errorf("dense-world blocking overhead %.2fx exhaustive, want <= 1.35x", ratio)
		}
	})
}

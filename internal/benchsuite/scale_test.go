package benchsuite

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"evmatching/internal/core"
	"evmatching/internal/dataset"
	"evmatching/internal/spill"
	"evmatching/internal/stream"
)

// scaleMatch builds a matcher over a scale world, warms it with one match —
// the first match builds the blocking index and pays cold caches — and
// returns the second, warm report.
func scaleMatch(t *testing.T, ds *dataset.Dataset, numTargets int, disable bool) *core.Report {
	t.Helper()
	targets := ds.AllEIDs()
	if numTargets > 0 {
		targets = ds.SampleEIDs(numTargets, rand.New(rand.NewSource(5)))
	}
	m, err := core.New(ds, core.Options{
		Algorithm:       core.AlgorithmSS,
		Mode:            core.ModeSerial,
		WorkFactor:      1,
		DisableBlocking: disable,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Match(context.Background(), targets); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Match(context.Background(), targets)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestScaleSmoke is the CI scale gate: the sparse-city 100k preset runs end
// to end — generation, blocking-index build, blocked and exhaustive matches —
// and the asymptote claim of DESIGN.md §13 is asserted directly: the blocked
// E stage must beat the exhaustive one by a wide margin on the sparse world
// (the committed baseline records ≥5×; the test demands ≥2.5× to absorb CI
// noise) while staying bit-identical, and the saturated dense world bounds
// the pruning bookkeeping (≤1.35× the exhaustive E stage here, ≤10% in the
// calmer committed baseline). It runs in -short mode by design — the
// scale-smoke CI job selects it with -run under a wall-clock budget.
func TestScaleSmoke(t *testing.T) {
	t.Run("sparse-100k", func(t *testing.T) {
		ds, err := sparseWorld()
		if err != nil {
			t.Fatal(err)
		}
		if n := len(ds.AllEIDs()); n < 50_000 {
			t.Fatalf("sparse preset produced only %d EIDs; not a scale world", n)
		}
		start := time.Now()
		blocked := scaleMatch(t, ds, scaleSparseTargets, false)
		exhaustive := scaleMatch(t, ds, scaleSparseTargets, true)
		t.Logf("sparse-100k: blocked E=%v exhaustive E=%v (matches took %v)",
			blocked.ETime, exhaustive.ETime, time.Since(start))

		if got, want := blocked.Fingerprint(), exhaustive.Fingerprint(); got != want {
			t.Fatalf("blocked fingerprint %s != exhaustive %s", got, want)
		}
		if blocked.BlockPruned == 0 {
			t.Error("sparse world pruned nothing; blocking index inert")
		}
		if ratio := float64(exhaustive.ETime) / float64(blocked.ETime); ratio < 2.5 {
			t.Errorf("sparse split-stage speedup %.1fx, want >= 2.5x (baseline records >= 5x)", ratio)
		}
	})

	t.Run("dense-bounded", func(t *testing.T) {
		ds, err := denseWorld()
		if err != nil {
			t.Fatal(err)
		}
		blocked := scaleMatch(t, ds, 0, false)
		exhaustive := scaleMatch(t, ds, 0, true)
		t.Logf("dense: blocked E=%v exhaustive E=%v", blocked.ETime, exhaustive.ETime)

		if got, want := blocked.Fingerprint(), exhaustive.Fingerprint(); got != want {
			t.Fatalf("blocked fingerprint %s != exhaustive %s", got, want)
		}
		if ratio := float64(blocked.ETime) / float64(exhaustive.ETime); ratio > 1.35 {
			t.Errorf("dense-world blocking overhead %.2fx exhaustive, want <= 1.35x", ratio)
		}
	})
}

// TestScaleSmokeSpill is the out-of-core CI gate (DESIGN.md §14): on both
// scale worlds, the parallel batch match and the stream replay run under a
// memory budget far below the working set — shuffle buckets spill to sorted
// runs, sealed windows evict to the blob log — and still land on exactly the
// in-memory fingerprint. Spilling must be *observable* (nonzero counters),
// or a silently inert budget would pass the equality check vacuously.
func TestScaleSmokeSpill(t *testing.T) {
	worlds := []struct {
		name       string
		world      func() (*dataset.Dataset, error)
		numTargets int
		budget     int64
	}{
		// The blocked sparse E stage prunes its shuffle down to a few KB, so
		// its budget must be tighter than the dense world's to force runs —
		// both are still vanishingly small next to the worlds' working sets.
		{"sparse-100k", sparseWorld, scaleSparseTargets, 1 << 10},
		{"dense", denseWorld, 0, 64 << 10},
	}

	t.Run("batch", func(t *testing.T) {
		for _, tc := range worlds {
			t.Run(tc.name, func(t *testing.T) {
				ds, err := tc.world()
				if err != nil {
					t.Fatal(err)
				}
				targets := ds.AllEIDs()
				if tc.numTargets > 0 {
					targets = ds.SampleEIDs(tc.numTargets, rand.New(rand.NewSource(5)))
				}
				match := func(budget int64) *core.Report {
					t.Helper()
					opts := core.Options{
						Algorithm: core.AlgorithmSS,
						Mode:      core.ModeParallel,
						Workers:   4,
						MemBudget: budget,
					}
					if budget > 0 {
						opts.SpillDir = t.TempDir()
					}
					m, err := core.New(ds, opts)
					if err != nil {
						t.Fatal(err)
					}
					rep, err := m.Match(context.Background(), targets)
					if err != nil {
						t.Fatal(err)
					}
					return rep
				}
				inMem := match(0)
				spilled := match(tc.budget)
				if got, want := spilled.Fingerprint(), inMem.Fingerprint(); got != want {
					t.Fatalf("budgeted fingerprint %s != in-memory %s", got, want)
				}
				if spilled.Spill.RunsWritten == 0 || spilled.Spill.BytesSpilled == 0 {
					t.Errorf("budget forced no shuffle spill: %+v", spilled.Spill)
				}
				if spilled.Spill.RunsMerged < spilled.Spill.RunsWritten {
					t.Errorf("wrote %d runs but merged only %d", spilled.Spill.RunsWritten, spilled.Spill.RunsMerged)
				}
				t.Logf("%s batch: %+v", tc.name, spilled.Spill)
			})
		}
	})

	t.Run("stream", func(t *testing.T) {
		for _, tc := range worlds {
			t.Run(tc.name, func(t *testing.T) {
				ds, err := tc.world()
				if err != nil {
					t.Fatal(err)
				}
				_, obs, err := stream.EventsFromDataset(ds, 1_000, 5)
				if err != nil {
					t.Fatal(err)
				}
				scfg := stream.Config{
					Targets:    ds.SampleEIDs(scaleSparseTargets, rand.New(rand.NewSource(5))),
					WindowMS:   1_000,
					LatenessMS: 250,
					Dim:        ds.Config.DescriptorDim(),
					Seed:       5,
				}
				replay := func(budget int64) (string, spill.Snapshot) {
					t.Helper()
					cfg := scfg
					cfg.MemBudget = budget
					if budget > 0 {
						cfg.SpillDir = t.TempDir()
					}
					e, err := stream.NewEngine(cfg)
					if err != nil {
						t.Fatal(err)
					}
					for i, o := range obs {
						if _, err := e.Ingest(o); err != nil {
							t.Fatalf("Ingest %d: %v", i, err)
						}
					}
					rep, err := e.Finalize(context.Background())
					if err != nil {
						t.Fatal(err)
					}
					return rep.Fingerprint(), e.SpillStats()
				}
				// The resident working set is the sealed V payloads: pixel
				// patches plus the fixed per-detection overhead the engine
				// itself charges. Budget a quarter of it.
				var working int64
				for _, o := range obs {
					if o.Patch != nil {
						working += int64(len(o.Patch.Pix)) + 64
					}
				}
				inMem, _ := replay(0)
				spilledFP, snap := replay(working / 4)
				if spilledFP != inMem {
					t.Fatalf("budgeted replay fingerprint %s != in-memory %s", spilledFP, inMem)
				}
				if snap.Evictions == 0 || snap.BytesSpilled == 0 || snap.Reloads == 0 {
					t.Errorf("budget %d (working set %d) forced no spill activity: %+v", working/4, working, snap)
				}
				t.Logf("%s stream: working set %d, %+v", tc.name, working, snap)
			})
		}
	})
}

package scenario

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"evmatching/internal/geo"
	"evmatching/internal/spatial"
)

// Store indexes the EV-Scenarios of a dataset by ID, by time window, and
// spatially, so both the E stage (window-ordered scans) and V stage (fetch
// the V-Scenario for a selected ID) are cheap.
type Store struct {
	layout geo.Layout
	esc    []*EScenario      // dense, index == int(ID)
	vsc    []*VScenario      // parallel to esc; nil when no detections
	byWin  map[int][]ID      // window -> scenario IDs, in insertion order
	tree   *spatial.Quadtree // scenario cell centers, payload ID (built lazily)

	mu        sync.Mutex   // guards winSorted
	winSorted map[int][]ID // cache of AtWindow's cell-sorted ID lists
}

// NewStore creates an empty store over the given layout.
func NewStore(layout geo.Layout) *Store {
	return &Store{layout: layout, byWin: make(map[int][]ID), winSorted: make(map[int][]ID)}
}

// Layout returns the cell layout scenarios are defined over.
func (st *Store) Layout() geo.Layout { return st.layout }

// Add registers an EV-Scenario pair, assigning and returning its ID. The
// VScenario may be nil when no detections were captured in the cell. The
// pair's Cell and Window must agree.
func (st *Store) Add(e *EScenario, v *VScenario) (ID, error) {
	if e == nil {
		return NoID, fmt.Errorf("scenario: nil E-Scenario")
	}
	if v != nil && (v.Cell != e.Cell || v.Window != e.Window) {
		return NoID, fmt.Errorf("scenario: EV pair mismatch: E(cell %d win %d) vs V(cell %d win %d)",
			e.Cell, e.Window, v.Cell, v.Window)
	}
	id := ID(len(st.esc))
	e.ID = id
	if v != nil {
		v.ID = id
	}
	st.esc = append(st.esc, e)
	st.vsc = append(st.vsc, v)
	st.byWin[e.Window] = append(st.byWin[e.Window], id)
	st.tree = nil // invalidate spatial index
	st.mu.Lock()
	delete(st.winSorted, e.Window) // invalidate the window's sorted cache
	st.mu.Unlock()
	return id, nil
}

// Len returns the number of stored scenario pairs.
func (st *Store) Len() int { return len(st.esc) }

// E returns the E-Scenario with the given ID, or nil if out of range.
func (st *Store) E(id ID) *EScenario {
	if int(id) < 0 || int(id) >= len(st.esc) {
		return nil
	}
	return st.esc[id]
}

// V returns the V-Scenario with the given ID, or nil if out of range or no
// detections were captured for that scenario.
func (st *Store) V(id ID) *VScenario {
	if int(id) < 0 || int(id) >= len(st.vsc) {
		return nil
	}
	return st.vsc[id]
}

// Windows returns the sorted list of time windows that have scenarios.
func (st *Store) Windows() []int {
	out := make([]int, 0, len(st.byWin))
	for w := range st.byWin {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// AtWindow returns the IDs of scenarios in the given window, sorted by cell.
// The sorted list is computed once per window and cached until the window
// gains a scenario; the returned slice is shared, so callers must not modify
// it.
func (st *Store) AtWindow(w int) []ID {
	st.mu.Lock()
	if cached, ok := st.winSorted[w]; ok {
		st.mu.Unlock()
		return cached
	}
	st.mu.Unlock()
	idsAt := st.byWin[w]
	out := make([]ID, len(idsAt))
	copy(out, idsAt)
	sort.Slice(out, func(i, j int) bool { return st.esc[out[i]].Cell < st.esc[out[j]].Cell })
	st.mu.Lock()
	if st.winSorted == nil {
		st.winSorted = make(map[int][]ID)
	}
	st.winSorted[w] = out
	st.mu.Unlock()
	return out
}

// ShuffledWindows returns all windows in a random order drawn from rng; the
// set-splitting E stage consumes scenarios one random timestamp at a time
// (paper Algorithm 3 preprocess step).
func (st *Store) ShuffledWindows(rng *rand.Rand) []int {
	ws := st.Windows()
	rng.Shuffle(len(ws), func(i, j int) { ws[i], ws[j] = ws[j], ws[i] })
	return ws
}

// QueryRegion returns the IDs of scenarios whose cell center falls within r,
// across all windows, using the spatial index.
func (st *Store) QueryRegion(r geo.Rect) ([]ID, error) {
	if st.tree == nil {
		if err := st.buildTree(); err != nil {
			return nil, err
		}
	}
	items := st.tree.Query(r)
	out := make([]ID, 0, len(items))
	for _, it := range items {
		id, ok := it.Data.(ID)
		if !ok {
			return nil, fmt.Errorf("scenario: corrupt spatial index payload %T", it.Data)
		}
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

func (st *Store) buildTree() error {
	tree, err := spatial.New(st.layout.Bounds())
	if err != nil {
		return fmt.Errorf("scenario: build spatial index: %w", err)
	}
	for _, e := range st.esc {
		center := st.layout.Bounds().Clamp(st.layout.Center(e.Cell))
		if err := tree.Insert(center, e.ID); err != nil {
			return fmt.Errorf("scenario: index scenario %d: %w", e.ID, err)
		}
	}
	st.tree = tree
	return nil
}

package scenario

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"evmatching/internal/geo"
	"evmatching/internal/spatial"
)

// Store indexes the EV-Scenarios of a dataset by ID, by time window, and
// spatially, so both the E stage (window-ordered scans) and V stage (fetch
// the V-Scenario for a selected ID) are cheap.
type Store struct {
	layout geo.Layout
	esc    []*EScenario      // dense, index == int(ID)
	vsc    []*VScenario      // parallel to esc; nil when no detections
	byWin  map[int][]ID      // window -> scenario IDs, in insertion order
	tree   *spatial.Quadtree // scenario cell centers, payload ID (built lazily)

	mu        sync.Mutex   // guards winSorted
	winSorted map[int][]ID // cache of AtWindow's cell-sorted ID lists

	// Out-of-core state (DESIGN.md §14). When a pager is installed, sealed
	// V-Scenario payloads may be evicted: vsc[id] drops to nil, evicted[id]
	// flips, and reads page the payload back in transiently. Evictions are
	// serialized by the owning engine; reads may be concurrent.
	pager   VPager
	evicted []bool // parallel to vsc; true when the payload lives on disk

	pageMu  sync.Mutex
	pageErr error // sticky: first reload failure seen on the legacy V path
}

// VPager reloads an evicted V-Scenario payload from secondary storage.
type VPager interface {
	LoadV(id ID) (*VScenario, error)
}

// NewStore creates an empty store over the given layout.
func NewStore(layout geo.Layout) *Store {
	return &Store{layout: layout, byWin: make(map[int][]ID), winSorted: make(map[int][]ID)}
}

// Layout returns the cell layout scenarios are defined over.
func (st *Store) Layout() geo.Layout { return st.layout }

// Add registers an EV-Scenario pair, assigning and returning its ID. The
// VScenario may be nil when no detections were captured in the cell. The
// pair's Cell and Window must agree.
func (st *Store) Add(e *EScenario, v *VScenario) (ID, error) {
	if e == nil {
		return NoID, fmt.Errorf("scenario: nil E-Scenario")
	}
	if v != nil && (v.Cell != e.Cell || v.Window != e.Window) {
		return NoID, fmt.Errorf("scenario: EV pair mismatch: E(cell %d win %d) vs V(cell %d win %d)",
			e.Cell, e.Window, v.Cell, v.Window)
	}
	id := ID(len(st.esc))
	e.ID = id
	if v != nil {
		v.ID = id
	}
	st.esc = append(st.esc, e)
	st.vsc = append(st.vsc, v)
	st.byWin[e.Window] = append(st.byWin[e.Window], id)
	st.tree = nil // invalidate spatial index
	st.mu.Lock()
	delete(st.winSorted, e.Window) // invalidate the window's sorted cache
	st.mu.Unlock()
	return id, nil
}

// Len returns the number of stored scenario pairs.
func (st *Store) Len() int { return len(st.esc) }

// E returns the E-Scenario with the given ID, or nil if out of range.
func (st *Store) E(id ID) *EScenario {
	if int(id) < 0 || int(id) >= len(st.esc) {
		return nil
	}
	return st.esc[id]
}

// V returns the V-Scenario with the given ID, or nil if out of range or no
// detections were captured for that scenario. Evicted payloads are paged
// back in transiently (the store stays within budget); a reload failure is
// recorded in PageErr — callers that can propagate errors should prefer
// VChecked, and the matcher checks PageErr before trusting a report, so a
// failed page-in can never surface as a silently different fingerprint.
func (st *Store) V(id ID) *VScenario {
	v, err := st.VChecked(id)
	if err != nil {
		st.pageMu.Lock()
		if st.pageErr == nil {
			st.pageErr = err
		}
		st.pageMu.Unlock()
		return nil
	}
	return v
}

// VChecked is V with an explicit error: an evicted payload that cannot be
// reloaded returns a wrapped error instead of masquerading as "no
// detections".
func (st *Store) VChecked(id ID) (*VScenario, error) {
	if int(id) < 0 || int(id) >= len(st.vsc) {
		return nil, nil
	}
	if st.evictedAt(id) {
		v, err := st.pager.LoadV(id)
		if err != nil {
			return nil, fmt.Errorf("scenario: page in V %d: %w", id, err)
		}
		return v, nil
	}
	return st.vsc[id], nil
}

// evictedAt reports whether id's payload has been paged out.
func (st *Store) evictedAt(id ID) bool {
	return int(id) < len(st.evicted) && st.evicted[id]
}

// SetVPager installs the reload path for evicted V-Scenario payloads.
// It must be set before the first EvictV.
func (st *Store) SetVPager(p VPager) { st.pager = p }

// EvictV drops the in-memory payload of id, which the installed pager must
// already be able to reload. The caller serializes evictions against reads.
func (st *Store) EvictV(id ID) error {
	if st.pager == nil {
		return fmt.Errorf("scenario: evict V %d: no pager installed", id)
	}
	if int(id) < 0 || int(id) >= len(st.vsc) || st.vsc[id] == nil {
		return fmt.Errorf("scenario: evict V %d: no resident payload", id)
	}
	for len(st.evicted) < len(st.vsc) {
		st.evicted = append(st.evicted, false)
	}
	st.vsc[id] = nil
	st.evicted[id] = true
	return nil
}

// PageErr returns the first reload failure seen by the legacy V accessor,
// or nil. It is sticky: once a page-in has failed, every downstream result
// is suspect and the engine must fail the run.
func (st *Store) PageErr() error {
	st.pageMu.Lock()
	defer st.pageMu.Unlock()
	return st.pageErr
}

// Windows returns the sorted list of time windows that have scenarios.
func (st *Store) Windows() []int {
	out := make([]int, 0, len(st.byWin))
	for w := range st.byWin {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// AtWindow returns the IDs of scenarios in the given window, sorted by cell.
// The sorted list is computed once per window and cached until the window
// gains a scenario; the returned slice is shared, so callers must not modify
// it.
func (st *Store) AtWindow(w int) []ID {
	st.mu.Lock()
	if cached, ok := st.winSorted[w]; ok {
		st.mu.Unlock()
		return cached
	}
	st.mu.Unlock()
	idsAt := st.byWin[w]
	out := make([]ID, len(idsAt))
	copy(out, idsAt)
	sort.Slice(out, func(i, j int) bool { return st.esc[out[i]].Cell < st.esc[out[j]].Cell })
	st.mu.Lock()
	if st.winSorted == nil {
		st.winSorted = make(map[int][]ID)
	}
	st.winSorted[w] = out
	st.mu.Unlock()
	return out
}

// ShuffledWindows returns all windows in a random order drawn from rng; the
// set-splitting E stage consumes scenarios one random timestamp at a time
// (paper Algorithm 3 preprocess step).
func (st *Store) ShuffledWindows(rng *rand.Rand) []int {
	ws := st.Windows()
	rng.Shuffle(len(ws), func(i, j int) { ws[i], ws[j] = ws[j], ws[i] })
	return ws
}

// QueryRegion returns the IDs of scenarios whose cell center falls within r,
// across all windows, using the spatial index.
func (st *Store) QueryRegion(r geo.Rect) ([]ID, error) {
	if st.tree == nil {
		if err := st.buildTree(); err != nil {
			return nil, err
		}
	}
	items := st.tree.Query(r)
	out := make([]ID, 0, len(items))
	for _, it := range items {
		id, ok := it.Data.(ID)
		if !ok {
			return nil, fmt.Errorf("scenario: corrupt spatial index payload %T", it.Data)
		}
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

func (st *Store) buildTree() error {
	tree, err := spatial.New(st.layout.Bounds())
	if err != nil {
		return fmt.Errorf("scenario: build spatial index: %w", err)
	}
	for _, e := range st.esc {
		center := st.layout.Bounds().Clamp(st.layout.Center(e.Cell))
		if err := tree.Insert(center, e.ID); err != nil {
			return fmt.Errorf("scenario: index scenario %d: %w", e.ID, err)
		}
	}
	st.tree = tree
	return nil
}

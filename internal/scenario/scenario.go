// Package scenario defines EV-Scenarios (paper Definition 1): snapshots of
// the EID and VID sets appearing in one spatial cell during one time window.
// An EScenario holds the electronically observed identities with their
// inclusive/vague attribution; the corresponding VScenario holds the visual
// detections captured in the same cell and window.
package scenario

import (
	"fmt"

	"evmatching/internal/feature"
	"evmatching/internal/geo"
	"evmatching/internal/ids"
)

// ID uniquely identifies a scenario (an E-Scenario and its corresponding
// V-Scenario share the ID).
type ID int

// NoID marks an absent scenario reference.
const NoID ID = -1

// Attr is the zone attribute of an EID within an E-Scenario: inclusive EIDs
// were confidently inside the cell, vague EIDs were near the border (or
// appeared only intermittently) and may belong to a neighboring scenario.
type Attr uint8

// Attr values. The zero value is invalid so that a missing map entry is
// distinguishable from a real attribute.
const (
	AttrInclusive Attr = iota + 1
	AttrVague
)

// String implements fmt.Stringer.
func (a Attr) String() string {
	switch a {
	case AttrInclusive:
		return "inclusive"
	case AttrVague:
		return "vague"
	default:
		return "invalid"
	}
}

// EScenario is the electronic half of an EV-Scenario: the set of EIDs
// captured in one cell during one window, each with its zone attribute.
type EScenario struct {
	ID     ID               `json:"id"`
	Cell   geo.CellID       `json:"cell"`
	Window int              `json:"window"`
	EIDs   map[ids.EID]Attr `json:"eids"`
}

// Contains reports whether e appears in the scenario (in any zone).
func (s *EScenario) Contains(e ids.EID) bool {
	_, ok := s.EIDs[e]
	return ok
}

// AttrOf returns the zone attribute of e and whether e appears at all.
func (s *EScenario) AttrOf(e ids.EID) (Attr, bool) {
	a, ok := s.EIDs[e]
	return a, ok
}

// Inclusive reports whether e appears with the inclusive attribute.
func (s *EScenario) Inclusive(e ids.EID) bool {
	return s.EIDs[e] == AttrInclusive
}

// Len returns the number of EIDs in the scenario.
func (s *EScenario) Len() int { return len(s.EIDs) }

// SortedEIDs returns the scenario's EIDs in sorted order, for deterministic
// iteration.
func (s *EScenario) SortedEIDs() []ids.EID {
	out := make([]ids.EID, 0, len(s.EIDs))
	for e := range s.EIDs {
		out = append(out, e)
	}
	return ids.SortEIDs(out)
}

// Detection is one captured human figure in a V-Scenario. Matching code may
// read VID (the re-identification label, available under the paper's
// VID-consistency assumption) and Patch (raw pixels requiring feature
// extraction). TruePerson is ground truth reserved for evaluation.
type Detection struct {
	VID        ids.VID       `json:"vid"`
	Patch      feature.Patch `json:"patch"`
	TruePerson int           `json:"truePerson"`
}

// VScenario is the visual half of an EV-Scenario: the detections captured in
// the cell during the window.
type VScenario struct {
	ID         ID          `json:"id"`
	Cell       geo.CellID  `json:"cell"`
	Window     int         `json:"window"`
	Detections []Detection `json:"detections"`
}

// VIDs returns the distinct VID labels present, in sorted order.
func (s *VScenario) VIDs() []ids.VID {
	seen := make(map[ids.VID]bool, len(s.Detections))
	out := make([]ids.VID, 0, len(s.Detections))
	for _, d := range s.Detections {
		if !seen[d.VID] {
			seen[d.VID] = true
			out = append(out, d.VID)
		}
	}
	return ids.SortVIDs(out)
}

// HasVID reports whether any detection carries the given VID label.
func (s *VScenario) HasVID(v ids.VID) bool {
	for _, d := range s.Detections {
		if d.VID == v {
			return true
		}
	}
	return false
}

// String implements fmt.Stringer.
func (s *EScenario) String() string {
	return fmt.Sprintf("E-Scenario %d (cell %d, window %d, %d EIDs)", s.ID, s.Cell, s.Window, len(s.EIDs))
}

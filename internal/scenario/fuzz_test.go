package scenario

import (
	"bytes"
	"errors"
	"testing"

	"evmatching/internal/feature"
	"evmatching/internal/geo"
	"evmatching/internal/ids"
)

// fuzzPair builds a small valid EV-Scenario pair for the seed corpus.
func fuzzPair() (*EScenario, *VScenario) {
	e := &EScenario{
		Cell:   3,
		Window: 2,
		EIDs: map[ids.EID]Attr{
			"imsi-1": AttrInclusive,
			"imsi-2": AttrVague,
		},
	}
	v := &VScenario{
		Cell:   3,
		Window: 2,
		Detections: []Detection{
			{VID: "vid-1", Patch: feature.Patch{W: 2, H: 3, Pix: []byte{1, 2, 3, 4, 5, 6}}},
			{VID: "vid-2", Patch: feature.Patch{W: 0, H: 0, Pix: nil}},
		},
	}
	return e, v
}

// FuzzParseScenario feeds arbitrary bytes to the EV-Scenario pair decoder:
// corrupt input must produce an error wrapping ErrBadScenario, never a panic
// or a half-valid pair, and anything that decodes must survive re-encoding
// and Store.Add.
func FuzzParseScenario(f *testing.F) {
	// One seed per input shape: a full valid pair, an E-only pair, a
	// cell/window-mismatched pair, a bad zone attribute, broken patch
	// geometry, and non-JSON noise.
	e, v := fuzzPair()
	valid, err := EncodePair(e, v)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	if eOnly, err := EncodePair(e, nil); err == nil {
		f.Add(eOnly)
	}
	mismatched := &VScenario{Cell: v.Cell + 1, Window: v.Window, Detections: v.Detections}
	if bad, err := EncodePair(e, mismatched); err == nil {
		f.Add(bad)
	}
	f.Add([]byte(`{"e":{"cell":1,"window":0,"eids":{"x":9}}}`))
	f.Add([]byte(`{"e":{"cell":1,"window":0,"eids":{"x":1}},"v":{"cell":1,"window":0,"detections":[{"vid":"a","patch":{"w":4,"h":4,"pix":"AQ=="}}]}}`))
	f.Add([]byte{})
	f.Add([]byte("garbage"))

	layout, err := geo.NewGridLayout(geo.Rect{Max: geo.Point{X: 100, Y: 100}}, 4, 4)
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		pe, pv, err := ParsePair(data)
		if err != nil {
			if !errors.Is(err, ErrBadScenario) {
				t.Fatalf("ParsePair error does not wrap ErrBadScenario: %v", err)
			}
			if pe != nil || pv != nil {
				t.Fatal("ParsePair returned a half-valid pair alongside an error")
			}
			return
		}
		// A decoded pair must re-encode, decode back to an equal pair, and
		// register in a store without panicking.
		out, err := EncodePair(pe, pv)
		if err != nil {
			t.Fatalf("EncodePair on decoded pair: %v", err)
		}
		pe2, pv2, err := ParsePair(out)
		if err != nil {
			t.Fatalf("re-decode of encoded pair: %v", err)
		}
		out2, err := EncodePair(pe2, pv2)
		if err != nil {
			t.Fatalf("second EncodePair: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("round trip not stable:\n%s\nvs\n%s", out, out2)
		}
		st := NewStore(layout)
		if _, err := st.Add(pe, pv); err != nil {
			t.Fatalf("Store.Add rejected a validated pair: %v", err)
		}
	})
}

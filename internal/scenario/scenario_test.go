package scenario

import (
	"math/rand"
	"testing"

	"evmatching/internal/geo"
	"evmatching/internal/ids"
)

func newEScenario(cell geo.CellID, window int, eids map[ids.EID]Attr) *EScenario {
	return &EScenario{Cell: cell, Window: window, EIDs: eids}
}

func TestEScenarioAccessors(t *testing.T) {
	s := newEScenario(3, 7, map[ids.EID]Attr{
		"bb": AttrInclusive,
		"aa": AttrVague,
	})
	if !s.Contains("aa") || !s.Contains("bb") || s.Contains("cc") {
		t.Error("Contains wrong")
	}
	if a, ok := s.AttrOf("aa"); !ok || a != AttrVague {
		t.Errorf("AttrOf(aa) = %v, %v", a, ok)
	}
	if _, ok := s.AttrOf("zz"); ok {
		t.Error("AttrOf(absent) reported present")
	}
	if !s.Inclusive("bb") || s.Inclusive("aa") || s.Inclusive("zz") {
		t.Error("Inclusive wrong")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	sorted := s.SortedEIDs()
	if len(sorted) != 2 || sorted[0] != "aa" || sorted[1] != "bb" {
		t.Errorf("SortedEIDs = %v", sorted)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestAttrString(t *testing.T) {
	for a, want := range map[Attr]string{
		AttrInclusive: "inclusive",
		AttrVague:     "vague",
		Attr(0):       "invalid",
	} {
		if got := a.String(); got != want {
			t.Errorf("Attr(%d).String() = %q, want %q", a, got, want)
		}
	}
}

func TestVScenarioVIDs(t *testing.T) {
	v := &VScenario{
		Cell:   1,
		Window: 2,
		Detections: []Detection{
			{VID: "V2"},
			{VID: "V1"},
			{VID: "V2"}, // duplicate label, second sighting
		},
	}
	got := v.VIDs()
	if len(got) != 2 || got[0] != "V1" || got[1] != "V2" {
		t.Errorf("VIDs = %v", got)
	}
	if !v.HasVID("V1") || v.HasVID("V9") {
		t.Error("HasVID wrong")
	}
}

func testLayout(t *testing.T) geo.Layout {
	t.Helper()
	l, err := geo.NewGridLayout(geo.Square(geo.Pt(0, 0), 100), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestStoreAddAndLookup(t *testing.T) {
	st := NewStore(testLayout(t))
	e := newEScenario(2, 5, map[ids.EID]Attr{"aa": AttrInclusive})
	v := &VScenario{Cell: 2, Window: 5, Detections: []Detection{{VID: "V1"}}}
	id, err := st.Add(e, v)
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != id || v.ID != id {
		t.Error("Add did not assign IDs")
	}
	if st.Len() != 1 {
		t.Errorf("Len = %d", st.Len())
	}
	if st.E(id) != e || st.V(id) != v {
		t.Error("lookup returned wrong scenario")
	}
	if st.E(99) != nil || st.V(-1) != nil {
		t.Error("out-of-range lookup should return nil")
	}
}

func TestStoreAddValidation(t *testing.T) {
	st := NewStore(testLayout(t))
	if _, err := st.Add(nil, nil); err == nil {
		t.Error("want error for nil E-Scenario")
	}
	e := newEScenario(1, 1, nil)
	v := &VScenario{Cell: 2, Window: 1}
	if _, err := st.Add(e, v); err == nil {
		t.Error("want error for mismatched EV pair")
	}
}

func TestStoreNilVScenario(t *testing.T) {
	st := NewStore(testLayout(t))
	id, err := st.Add(newEScenario(0, 0, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.V(id) != nil {
		t.Error("want nil V-Scenario")
	}
}

func TestStoreWindows(t *testing.T) {
	st := NewStore(testLayout(t))
	for _, w := range []int{5, 1, 3, 1} {
		if _, err := st.Add(newEScenario(geo.CellID(w), w, nil), nil); err != nil {
			t.Fatal(err)
		}
	}
	ws := st.Windows()
	if len(ws) != 3 || ws[0] != 1 || ws[1] != 3 || ws[2] != 5 {
		t.Errorf("Windows = %v", ws)
	}
	if got := st.AtWindow(1); len(got) != 2 {
		t.Errorf("AtWindow(1) = %v", got)
	}
	if got := st.AtWindow(42); len(got) != 0 {
		t.Errorf("AtWindow(42) = %v, want empty", got)
	}
}

func TestStoreAtWindowSortedByCell(t *testing.T) {
	st := NewStore(testLayout(t))
	for _, c := range []geo.CellID{9, 2, 5} {
		if _, err := st.Add(newEScenario(c, 0, nil), nil); err != nil {
			t.Fatal(err)
		}
	}
	got := st.AtWindow(0)
	cells := []geo.CellID{st.E(got[0]).Cell, st.E(got[1]).Cell, st.E(got[2]).Cell}
	if cells[0] != 2 || cells[1] != 5 || cells[2] != 9 {
		t.Errorf("AtWindow cells = %v, want ascending", cells)
	}
}

func TestStoreShuffledWindowsIsPermutation(t *testing.T) {
	st := NewStore(testLayout(t))
	for w := 0; w < 20; w++ {
		if _, err := st.Add(newEScenario(0, w, nil), nil); err != nil {
			t.Fatal(err)
		}
	}
	got := st.ShuffledWindows(rand.New(rand.NewSource(4)))
	if len(got) != 20 {
		t.Fatalf("len = %d", len(got))
	}
	seen := make(map[int]bool)
	for _, w := range got {
		if seen[w] {
			t.Fatalf("window %d repeated", w)
		}
		seen[w] = true
	}
}

func TestStoreQueryRegion(t *testing.T) {
	l := testLayout(t) // 4x4 over 100x100, cells are 25x25
	st := NewStore(l)
	// One scenario per cell at window 0.
	for c := 0; c < l.NumCells(); c++ {
		if _, err := st.Add(newEScenario(geo.CellID(c), 0, nil), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Query the lower-left quadrant: cells 0, 1, 4, 5 have centers there.
	got, err := st.QueryRegion(geo.Square(geo.Pt(0, 0), 50))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("QueryRegion = %v, want 4 scenarios", got)
	}
	for _, id := range got {
		c := st.E(id).Cell
		if c != 0 && c != 1 && c != 4 && c != 5 {
			t.Errorf("unexpected cell %d in query result", c)
		}
	}
}

package scenario

import (
	"encoding/json"
	"errors"
	"fmt"

	"evmatching/internal/ids"
)

// ErrBadScenario reports a scenario pair that decoded but fails validation.
var ErrBadScenario = errors.New("scenario: invalid scenario pair")

// pairJSON is the interchange form of one EV-Scenario pair: the electronic
// half is mandatory, the visual half optional (cells without cameras).
type pairJSON struct {
	E *EScenario `json:"e"`
	V *VScenario `json:"v,omitempty"`
}

// ParsePair decodes one EV-Scenario pair from JSON and validates it: the
// E-Scenario must be present with well-formed EIDs and attributes, and a
// V-Scenario, when present, must reference the same cell and window and
// carry geometrically consistent detection patches. Corrupt input yields an
// error wrapping ErrBadScenario — never a panic or a half-valid pair.
func ParsePair(data []byte) (*EScenario, *VScenario, error) {
	var p pairJSON
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, nil, fmt.Errorf("%w: %w", ErrBadScenario, err)
	}
	if p.E == nil {
		return nil, nil, fmt.Errorf("%w: missing e-scenario", ErrBadScenario)
	}
	if p.E.Window < 0 {
		return nil, nil, fmt.Errorf("%w: negative window %d", ErrBadScenario, p.E.Window)
	}
	// Sorted iteration keeps which validation error surfaces first
	// deterministic (evlint: maprange).
	for _, e := range p.E.SortedEIDs() {
		if e == ids.None {
			return nil, nil, fmt.Errorf("%w: empty EID", ErrBadScenario)
		}
		if a := p.E.EIDs[e]; a != AttrInclusive && a != AttrVague {
			return nil, nil, fmt.Errorf("%w: EID %s has attribute %d", ErrBadScenario, e, a)
		}
	}
	if v := p.V; v != nil {
		if v.Cell != p.E.Cell || v.Window != p.E.Window {
			return nil, nil, fmt.Errorf("%w: EV pair mismatch: E(cell %d win %d) vs V(cell %d win %d)",
				ErrBadScenario, p.E.Cell, p.E.Window, v.Cell, v.Window)
		}
		for i, d := range v.Detections {
			if d.VID == ids.NoVID {
				return nil, nil, fmt.Errorf("%w: detection %d has no VID", ErrBadScenario, i)
			}
			patch := d.Patch
			if patch.W < 0 || patch.H < 0 || len(patch.Pix) != patch.W*patch.H {
				return nil, nil, fmt.Errorf("%w: detection %d patch %dx%d with %d pixels",
					ErrBadScenario, i, patch.W, patch.H, len(patch.Pix))
			}
		}
	}
	return p.E, p.V, nil
}

// EncodePair renders a validated EV-Scenario pair to its JSON interchange
// form, the inverse of ParsePair.
func EncodePair(e *EScenario, v *VScenario) ([]byte, error) {
	if e == nil {
		return nil, fmt.Errorf("%w: missing e-scenario", ErrBadScenario)
	}
	data, err := json.Marshal(pairJSON{E: e, V: v})
	if err != nil {
		return nil, fmt.Errorf("scenario: encode pair: %w", err)
	}
	return data, nil
}

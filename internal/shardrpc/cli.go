package shardrpc

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// ResolveWorkerBinary locates the evshardd worker binary for a supervisor
// Command: the explicit path when given, else an evshardd sitting next to
// the current executable (the common install layout), else $PATH.
func ResolveWorkerBinary(explicit string) (string, error) {
	if explicit != "" {
		if _, err := os.Stat(explicit); err != nil {
			return "", fmt.Errorf("shardrpc: worker binary %s: %w", explicit, err)
		}
		return explicit, nil
	}
	if exe, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(exe), "evshardd")
		if info, err := os.Stat(cand); err == nil && !info.IsDir() {
			return cand, nil
		}
	}
	if p, err := exec.LookPath("evshardd"); err == nil {
		return p, nil
	}
	return "", errors.New("shardrpc: evshardd binary not found: pass its path, or install it next to this binary or on PATH")
}

// ParseKillSpec compiles a scripted chaos schedule — comma-separated
// "shard@step" entries — into a KillPlan: each entry SIGKILLs the named
// shard's worker when its first incarnation reaches that message step.
// Replacement incarnations run unharmed, so a drill always terminates; the
// run must still finish with the same fingerprint as an undisturbed one.
// An empty spec returns a nil plan.
func ParseKillSpec(spec string) (func(shard, incarnation int, step int64) bool, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	type kill struct {
		shard int
		step  int64
	}
	var kills []kill
	for _, ent := range strings.Split(spec, ",") {
		ent = strings.TrimSpace(ent)
		var k kill
		if n, err := fmt.Sscanf(ent, "%d@%d", &k.shard, &k.step); err != nil || n != 2 {
			return nil, fmt.Errorf("shardrpc: bad kill entry %q (want shard@step)", ent)
		}
		if k.shard < 0 || k.step < 1 {
			return nil, fmt.Errorf("shardrpc: kill entry %q out of range", ent)
		}
		kills = append(kills, k)
	}
	return func(shard, incarnation int, step int64) bool {
		if incarnation != 1 {
			return false
		}
		for _, k := range kills {
			if k.shard == shard && k.step == step {
				return true
			}
		}
		return false
	}, nil
}

package shardrpc

import (
	"bytes"
	"encoding/gob"
	"testing"

	"evmatching/internal/feature"
	"evmatching/internal/scenario"
	"evmatching/internal/stream"
)

// mustGob encodes a seed-corpus value, panicking only at fuzz setup time.
func mustGob(v any) []byte {
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(v); err != nil {
		panic(err)
	}
	return b.Bytes()
}

// fuzzSeedMsgs is a representative message batch: a valid E observation, a
// V observation with a well-formed patch, a close round, and a snapshot
// request — the full ShardMsgKind surface.
func fuzzSeedMsgs() []stream.ShardMsg {
	patch := &feature.Patch{W: 4, H: 4, Pix: bytes.Repeat([]byte{128}, 16)}
	return []stream.ShardMsg{
		{Pos: 1, Kind: stream.ShardMsgObs, Obs: stream.Observation{
			TS: 10, Kind: stream.KindE, Cell: 3, EID: "e-1", Attr: scenario.AttrInclusive,
		}},
		{Pos: 2, Kind: stream.ShardMsgObs, Obs: stream.Observation{
			TS: 20, Kind: stream.KindV, Cell: 3, VID: "v-1", Person: 1, Patch: patch,
		}},
		{Pos: 3, Kind: stream.ShardMsgClose, Round: 1, Target: 1, MaxTS: 1500},
		{Pos: 4, Kind: stream.ShardMsgSnap},
	}
}

// FuzzShardRPCDecode feeds hostile wire bytes — truncated, duplicated,
// bit-flipped, or arbitrary — through the worker's rpc surface: whatever
// gob accepts is then driven through Configure/Apply/Ping, including a
// duplicated Apply (the supervisor's at-least-once redelivery). Nothing on
// this path may panic; errors are the contract for bad input.
func FuzzShardRPCDecode(f *testing.F) {
	params := stream.ShardParams{WindowMS: 1_000, Dim: 8, WorkFactor: 1}
	validConfigure := mustGob(&ConfigureArgs{
		Shard: 0, Incarnation: 1, Params: params,
		Initial: []stream.ShardBucket{{
			Window: 0, Cell: 3,
			EIDs: []stream.BucketEID{{EID: "e-1", Attr: scenario.Attr(1)}},
			Dets: []scenario.Detection{{VID: "v-1", TruePerson: 1,
				Patch: feature.Patch{W: 4, H: 4, Pix: bytes.Repeat([]byte{127}, 16)}}},
		}},
	})
	validApply := mustGob(&ApplyArgs{Shard: 0, Incarnation: 1, Msgs: fuzzSeedMsgs()})
	// Hostile shapes: a bucket whose patch dimensions lie about the pixel
	// count, and a feature payload the seal path must reject, not index.
	hostileConfigure := mustGob(&ConfigureArgs{
		Shard: 0, Incarnation: 1, Params: params,
		Initial: []stream.ShardBucket{{
			Window: 2, Cell: 9,
			Dets: []scenario.Detection{{VID: "v-x",
				Patch: feature.Patch{W: 1000, H: 1000, Pix: []byte{1, 2, 3}}}},
		}},
	})
	f.Add(validConfigure, validApply)
	f.Add(hostileConfigure, validApply)
	f.Add(validConfigure[:len(validConfigure)/2], validApply[:len(validApply)/2])
	f.Add(append(append([]byte{}, validApply...), validApply...), []byte("garbage"))
	f.Add([]byte{}, []byte{0xff, 0x00, 0x13, 0x37})

	f.Fuzz(func(t *testing.T, rawConf, rawApply []byte) {
		if len(rawConf) > 64<<10 || len(rawApply) > 64<<10 {
			return
		}
		w := &workerState{}
		var ca ConfigureArgs
		if err := gob.NewDecoder(bytes.NewReader(rawConf)).Decode(&ca); err == nil {
			// Clamp the cost knobs: huge WorkFactor/Dim values are slow, not
			// unsafe (extraction cost scales with both), and would stall the
			// fuzzer without exercising any new decode surface.
			if ca.Params.WorkFactor > 4 {
				ca.Params.WorkFactor = 4
			}
			if ca.Params.Dim > 64 {
				ca.Params.Dim = 64
			}
			_ = w.Configure(&ca, &ConfigureReply{})
		}
		var aa ApplyArgs
		if err := gob.NewDecoder(bytes.NewReader(rawApply)).Decode(&aa); err == nil {
			// Apply against whatever Configure left behind (possibly nothing),
			// then against a known-good windower under the same identity, then
			// duplicated — redelivery after a lost reply must not panic.
			var rep ApplyReply
			_ = w.Apply(&aa, &rep)
			base := ConfigureArgs{Shard: aa.Shard, Incarnation: aa.Incarnation, Params: params}
			if err := w.Configure(&base, &ConfigureReply{}); err == nil {
				rep = ApplyReply{}
				_ = w.Apply(&aa, &rep)
				rep = ApplyReply{}
				_ = w.Apply(&aa, &rep)
			}
		}
		var ping PingReply
		_ = w.Ping(&PingArgs{}, &ping)
	})
}

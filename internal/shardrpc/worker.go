package shardrpc

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"net/rpc"
	"sync"
	"sync/atomic"

	"evmatching/internal/stream"
)

// workerState is the rpc receiver a worker process hosts: one shard
// windower at a time, swapped out by Configure. The windower serializes on
// mu — it is not safe for concurrent use and the protocol has a single
// in-flight Apply per supervisor anyway. Identity lives under its own idMu
// so Ping answers while a long Apply holds mu: the supervisor's client arms
// per-I/O deadlines, and heartbeat replies are what keep bytes flowing on a
// healthy connection during a large batch.
type workerState struct {
	mu   sync.Mutex // serializes windower access (Configure/Apply)
	idMu sync.Mutex // guards identity so Ping never blocks behind Apply

	configured  bool
	shard       int
	incarnation int
	wind        *stream.ShardWindower
	steps       atomic.Int64
}

// Configure (rpc) resets the worker to host one shard incarnation.
func (w *workerState) Configure(args *ConfigureArgs, _ *ConfigureReply) error {
	if err := validateIdentity(args.Shard, args.Incarnation); err != nil {
		return err
	}
	wind, err := stream.NewShardWindower(args.Params, args.Initial)
	if err != nil {
		return fmt.Errorf("shardrpc: configure shard %d: %w", args.Shard, err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.idMu.Lock()
	w.configured = true
	w.shard = args.Shard
	w.incarnation = args.Incarnation
	w.idMu.Unlock()
	w.wind = wind
	w.steps.Store(0)
	return nil
}

// Apply (rpc) steps the windower through a batch of journalled messages and
// returns the emissions. Identity mismatches and invalid messages error
// without panicking; a failed batch leaves the worker reconfigurable.
func (w *workerState) Apply(args *ApplyArgs, reply *ApplyReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.idMu.Lock()
	configured, shard, incarnation := w.configured, w.shard, w.incarnation
	w.idMu.Unlock()
	if !configured {
		return fmt.Errorf("shardrpc: apply before configure")
	}
	if args.Shard != shard || args.Incarnation != incarnation {
		return fmt.Errorf("shardrpc: apply for shard %d incarnation %d, hosting shard %d incarnation %d",
			args.Shard, args.Incarnation, shard, incarnation)
	}
	for i := range args.Msgs {
		out, err := w.wind.Step(args.Msgs[i])
		if err != nil {
			return fmt.Errorf("shardrpc: shard %d step %d: %w", shard, w.steps.Load()+1, err)
		}
		w.steps.Add(1)
		if out != nil {
			reply.Outs = append(reply.Outs, *out)
		}
	}
	return nil
}

// Ping (rpc) is the supervisor's liveness probe. It deliberately takes only
// idMu so it answers mid-Apply.
func (w *workerState) Ping(args *PingArgs, reply *PingReply) error {
	w.idMu.Lock()
	defer w.idMu.Unlock()
	reply.Shard = w.shard
	reply.Incarnation = w.incarnation
	reply.Steps = w.steps.Load()
	return nil
}

// Serve accepts rpc connections on lis until it is closed, then waits for
// in-flight connections to drain. It returns nil on a clean listener close.
func Serve(lis net.Listener) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName(ServiceName, &workerState{}); err != nil {
		return err
	}
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := lis.Accept()
		if err != nil {
			return nil // listener closed
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.ServeConn(conn)
		}()
	}
}

// WorkerMain is the evshardd entry point, factored here so tests can host a
// worker by re-execing themselves. It binds the listen address, announces
// it on stdout as "listening <addr>", and serves until stdin reaches EOF —
// the supervisor holds the worker's stdin pipe open for its whole life, so
// a dead or detached supervisor takes its orphans down with it.
func WorkerMain(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("evshardd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", "127.0.0.1:0", "address to listen on (host:port; port 0 picks a free port)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(stderr, "evshardd: listen %s: %v\n", *listen, err)
		return 1
	}
	fmt.Fprintf(stdout, "listening %s\n", lis.Addr())
	if f, ok := stdout.(interface{ Sync() error }); ok {
		f.Sync()
	}
	go func() {
		// Orphan watchdog: block until the supervisor end of the stdin pipe
		// closes (supervisor shutdown or death), then stop accepting.
		io.Copy(io.Discard, bufio.NewReader(stdin))
		lis.Close()
	}()
	if err := Serve(lis); err != nil {
		fmt.Fprintf(stderr, "evshardd: serve: %v\n", err)
		return 1
	}
	return 0
}

package shardrpc_test

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"sync/atomic"
	"testing"
	"time"

	"evmatching/internal/mrtest"
	"evmatching/internal/shardrpc"
	"evmatching/internal/stream"
)

// killFrac mirrors the chaos package's deterministic hash stream: a uniform
// [0,1) value per (seed, shard, incarnation, step) so kill schedules are
// reproducible without any RNG state threaded through the supervisor.
func killFrac(seed int64, shard, inc int, step int64) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|kill|%d|%d|%d", seed, shard, inc, step)
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return float64(x>>11) / (1 << 53)
}

// remoteChaosRun replays the log through a remote-sharded router under the
// given supervisor config and returns the fingerprint plus both stat sets,
// with the router closed before the supervisor and process reaping asserted.
func remoteChaosRun(t *testing.T, cfg stream.Config, obs []stream.Observation, scfg shardrpc.SupervisorConfig, shards int) (string, stream.RouterStats, shardrpc.SupervisorStats) {
	t.Helper()
	sup := shardrpc.NewSupervisor(scfg)
	r, err := stream.NewRouter(stream.RouterConfig{
		Config:             cfg,
		Shards:             shards,
		Runner:             sup,
		SubCheckpointEvery: 64,
	})
	if err != nil {
		sup.Close()
		t.Fatalf("NewRouter: %v", err)
	}
	for i, o := range obs {
		accepted, err := r.Ingest(o)
		if err != nil {
			t.Fatalf("Ingest %d: %v", i, err)
		}
		if !accepted {
			t.Fatalf("Ingest %d: in-order observation dropped as late", i)
		}
	}
	rep, err := r.Finalize(context.Background())
	if err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	rst := r.Stats()
	r.Close()
	sst := sup.Stats()
	sup.Close()
	assertWorkersReaped(t, sup)
	return rep.Fingerprint(), rst, sst
}

// TestWorkerKillChaos is the cross-process half of the shard-kill battery:
// six seeded schedules SIGKILL worker processes mid-window (the kill lands
// between journal batches, killing whatever window state the worker holds)
// and every run must still land on the unsharded fingerprint, recovered via
// supervisor-initiated redispatch from sub-checkpoint plus journal replay.
func TestWorkerKillChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills worker processes")
	}
	mrtest.CheckGoroutines(t)
	cfg, obs := chaosWorkload(t)
	want := unshardedFingerprint(t, cfg, obs)
	for seed := int64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			scfg := workerSupervisorConfig(t)
			scfg.KillPlan = func(shard, inc int, step int64) bool {
				// Only the first two incarnations are in the blast radius so
				// every schedule terminates; the rate targets a handful of
				// kills per run.
				return inc <= 2 && killFrac(seed, shard, inc, step) < 0.004
			}
			got, rst, sst := remoteChaosRun(t, cfg, obs, scfg, 3)
			if got != want {
				t.Fatalf("seed %d: remote replay diverged from unsharded:\n--- unsharded\n%s\n--- remote\n%s",
					seed, want, got)
			}
			if sst.Kills == 0 {
				t.Fatalf("seed %d: kill plan never fired (vacuous chaos schedule)", seed)
			}
			if rst.SupervisorRedispatches == 0 {
				t.Fatalf("seed %d: kills happened but no supervisor-initiated redispatch", seed)
			}
			if rst.Redispatches < rst.SupervisorRedispatches {
				t.Fatalf("seed %d: Redispatches = %d < SupervisorRedispatches = %d",
					seed, rst.Redispatches, rst.SupervisorRedispatches)
			}
			t.Logf("seed %d: kills=%d spawned=%d redispatches=%d (supervisor=%d) retries=%d",
				seed, sst.Kills, sst.Spawned, rst.Redispatches, rst.SupervisorRedispatches, sst.Retries)
		})
	}
}

// TestWorkerKillDuringCheckpoint SIGKILLs a worker mid-checkpoint-barrier:
// the kill plan arms right before Checkpoint, so it fires on the first
// barrier snapshot message a worker receives. The barrier must still
// complete (the replacement incarnation replays the snapshot request from
// the journal), and the checkpoint must restore into a plain in-process
// router — the remote→in-process half of the v3 round trip — and resume to
// the unsharded fingerprint.
func TestWorkerKillDuringCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills worker processes")
	}
	mrtest.CheckGoroutines(t)
	cfg, obs := chaosWorkload(t)
	want := unshardedFingerprint(t, cfg, obs)
	var armed, fired atomic.Bool
	scfg := workerSupervisorConfig(t)
	scfg.KillPlan = func(shard, inc int, step int64) bool {
		return armed.Load() && fired.CompareAndSwap(false, true)
	}
	sup := shardrpc.NewSupervisor(scfg)
	r, err := stream.NewRouter(stream.RouterConfig{
		Config:             cfg,
		Shards:             3,
		Runner:             sup,
		SubCheckpointEvery: 64,
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	half := len(obs) / 2
	for i, o := range obs[:half] {
		if _, err := r.Ingest(o); err != nil {
			t.Fatalf("Ingest %d: %v", i, err)
		}
	}
	// Let the shard queues drain so the next messages the workers see are
	// the barrier's snapshot requests — the kill then lands mid-barrier.
	time.Sleep(300 * time.Millisecond)
	armed.Store(true)
	var buf bytes.Buffer
	if err := r.Checkpoint(&buf); err != nil {
		t.Fatalf("Checkpoint under worker kill: %v", err)
	}
	if !fired.Load() {
		t.Fatalf("kill plan never fired during the checkpoint barrier")
	}
	rst := r.Stats()
	r.Close()
	sup.Close()
	assertWorkersReaped(t, sup)
	if rst.SupervisorRedispatches == 0 {
		t.Fatalf("worker killed mid-barrier but no supervisor-initiated redispatch")
	}

	// Remote → in-process: restore without a runner and finish the log.
	r2, err := stream.RestoreRouter(stream.RouterConfig{Config: cfg, Shards: 3}, &buf)
	if err != nil {
		t.Fatalf("RestoreRouter: %v", err)
	}
	defer r2.Close()
	for i, o := range obs[half:] {
		if _, err := r2.Ingest(o); err != nil {
			t.Fatalf("resume Ingest %d: %v", i, err)
		}
	}
	rep, err := r2.Finalize(context.Background())
	if err != nil {
		t.Fatalf("resume Finalize: %v", err)
	}
	if got := rep.Fingerprint(); got != want {
		t.Fatalf("restored in-process replay diverged from unsharded:\n--- unsharded\n%s\n--- restored\n%s", want, got)
	}
}

// TestRemoteCheckpointRoundTrip is the in-process → remote half of the v3
// round trip: checkpoint a plain in-process sharded run midway, restore it
// with the supervisor as runner so worker processes pick the shards up from
// the checkpoint image, and finish the log to the unsharded fingerprint.
func TestRemoteCheckpointRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	mrtest.CheckGoroutines(t)
	cfg, obs := chaosWorkload(t)
	want := unshardedFingerprint(t, cfg, obs)
	r, err := stream.NewRouter(stream.RouterConfig{Config: cfg, Shards: 3})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	half := len(obs) / 2
	for i, o := range obs[:half] {
		if _, err := r.Ingest(o); err != nil {
			t.Fatalf("Ingest %d: %v", i, err)
		}
	}
	var buf bytes.Buffer
	if err := r.Checkpoint(&buf); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	r.Close()

	sup := shardrpc.NewSupervisor(workerSupervisorConfig(t))
	r2, err := stream.RestoreRouter(stream.RouterConfig{
		Config: cfg,
		Shards: 3,
		Runner: sup,
	}, &buf)
	if err != nil {
		sup.Close()
		t.Fatalf("RestoreRouter with runner: %v", err)
	}
	for i, o := range obs[half:] {
		if _, err := r2.Ingest(o); err != nil {
			t.Fatalf("resume Ingest %d: %v", i, err)
		}
	}
	rep, err := r2.Finalize(context.Background())
	if err != nil {
		t.Fatalf("resume Finalize: %v", err)
	}
	r2.Close()
	sst := sup.Stats()
	sup.Close()
	assertWorkersReaped(t, sup)
	if got := rep.Fingerprint(); got != want {
		t.Fatalf("restored remote replay diverged from unsharded:\n--- unsharded\n%s\n--- remote\n%s", want, got)
	}
	if sst.Fallbacks != 0 {
		t.Fatalf("Fallbacks = %d: restored run silently degraded to in-process shards", sst.Fallbacks)
	}
	if sst.Spawned < 3 {
		t.Fatalf("Spawned = %d, want >= 3 worker processes", sst.Spawned)
	}
}

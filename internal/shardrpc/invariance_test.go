package shardrpc_test

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"evmatching/internal/core"
	"evmatching/internal/mrtest"
	"evmatching/internal/shardrpc"
	"evmatching/internal/stream"
)

// goldenCases are the same three sha256 pins the stream package freezes in
// TestShardInvarianceGolden. The remote path must land on the identical
// hashes: remote ≡ in-process ≡ unsharded ≡ batch, bit for bit.
var goldenCases = []struct {
	name      string
	practical bool
	mode      core.Mode
	want      string
}{
	{"ideal-serial", false, core.ModeSerial,
		"3e0a02707e629de5dad8e6a5a6f135bf698c7be0f8fc18583b2005894200fe71"},
	{"practical-serial", true, core.ModeSerial,
		"e03713546448faa41e04d139ef8304ead2c11fa67e97d0186e7ab09e512f5b2e"},
	{"practical-parallel", true, core.ModeParallel,
		"a093882f68d3e321006251d7302bca42e014966bc9348bdc8867fc3dac59b3ee"},
}

// inProcessRunner drives the shard seam without processes: a ShardRunner
// that hosts every incarnation via stream.RunShardInProcess. It isolates the
// seam's wire conversions (sealedToWire/toSealed round trip, snapshot
// flattening) from the rpc and process machinery.
type inProcessRunner struct{}

func (inProcessRunner) RunShard(run stream.ShardRun) { stream.RunShardInProcess(run) }

// TestSeamRunnerInvarianceGolden pins the shard seam alone: a router driven
// through the public ShardRunner interface (wire types, ShardWindower) but
// hosted in-process must reproduce the golden hashes at every shard count.
func TestSeamRunnerInvarianceGolden(t *testing.T) {
	mrtest.CheckGoroutines(t)
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			ds := goldenDataset(t, tc.practical)
			targets := ds.AllEIDs()[:16]
			_, obs, err := stream.EventsFromDataset(ds, 1_000, 7)
			if err != nil {
				t.Fatalf("EventsFromDataset: %v", err)
			}
			cfg := engineConfig(ds, targets, tc.mode)
			want := unshardedFingerprint(t, cfg, obs)
			sum := sha256.Sum256([]byte(want))
			if got := hex.EncodeToString(sum[:]); got != tc.want {
				t.Fatalf("unsharded fingerprint hash = %s, want %s", got, tc.want)
			}
			for _, shards := range []int{1, 2, 3, 8} {
				got := routerFingerprint(t, stream.RouterConfig{
					Config: cfg,
					Shards: shards,
					Runner: inProcessRunner{},
				}, obs)
				if got != want {
					t.Fatalf("%d-shard seam-runner replay diverged from unsharded:\n--- unsharded\n%s\n--- seam\n%s",
						shards, want, got)
				}
			}
		})
	}
}

// TestRemoteShardInvarianceGolden is the tentpole invariant: shard windowers
// hosted in real worker processes over net/rpc reproduce the exact golden
// hashes of the in-process, unsharded, and batch paths.
func TestRemoteShardInvarianceGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	mrtest.CheckGoroutines(t)
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			ds := goldenDataset(t, tc.practical)
			targets := ds.AllEIDs()[:16]
			_, obs, err := stream.EventsFromDataset(ds, 1_000, 7)
			if err != nil {
				t.Fatalf("EventsFromDataset: %v", err)
			}
			cfg := engineConfig(ds, targets, tc.mode)
			batch := batchFingerprint(t, ds, targets, tc.mode)
			want := unshardedFingerprint(t, cfg, obs)
			if want != batch {
				t.Fatalf("unsharded replay diverged from batch:\n--- batch\n%s\n--- stream\n%s", batch, want)
			}
			sum := sha256.Sum256([]byte(want))
			if got := hex.EncodeToString(sum[:]); got != tc.want {
				t.Fatalf("fingerprint hash = %s, want %s (match results changed)", got, tc.want)
			}
			for _, shards := range []int{1, 3} {
				t.Run(fmt.Sprintf("workers-%d", shards), func(t *testing.T) {
					sup := shardrpc.NewSupervisor(workerSupervisorConfig(t))
					got := routerFingerprint(t, stream.RouterConfig{
						Config: cfg,
						Shards: shards,
						Runner: sup,
					}, obs)
					st := sup.Stats()
					sup.Close()
					assertWorkersReaped(t, sup)
					if got != want {
						t.Fatalf("%d-worker remote replay diverged from unsharded:\n--- unsharded\n%s\n--- remote\n%s",
							shards, want, got)
					}
					if st.Fallbacks != 0 {
						t.Fatalf("Fallbacks = %d: run silently degraded to in-process shards", st.Fallbacks)
					}
					if st.Spawned < int64(shards) {
						t.Fatalf("Spawned = %d, want >= %d worker processes", st.Spawned, shards)
					}
				})
			}
		})
	}
}

// TestSupervisorFallbackInProcess pins the degraded mode: when the worker
// command cannot start at all, every shard falls back to the in-process
// windower and the run still produces the correct fingerprint.
func TestSupervisorFallbackInProcess(t *testing.T) {
	mrtest.CheckGoroutines(t)
	cfg, obs := chaosWorkload(t)
	want := unshardedFingerprint(t, cfg, obs)
	sup := shardrpc.NewSupervisor(shardrpc.SupervisorConfig{
		Command: []string{"/nonexistent/evshardd-missing-binary"},
	})
	got := routerFingerprint(t, stream.RouterConfig{
		Config: cfg,
		Shards: 3,
		Runner: sup,
	}, obs)
	st := sup.Stats()
	sup.Close()
	if got != want {
		t.Fatalf("fallback replay diverged from unsharded:\n--- unsharded\n%s\n--- fallback\n%s", want, got)
	}
	if st.Fallbacks == 0 {
		t.Fatalf("Fallbacks = 0, want > 0 (worker command is unspawnable)")
	}
	if st.Spawned != 0 {
		t.Fatalf("Spawned = %d, want 0", st.Spawned)
	}
}

// hostileRunner emits protocol garbage instead of real shard output: an
// out-of-order round for shard 0 and an unknown output kind, then drains its
// input. The router must surface an error — never panic or hang.
type hostileRunner struct{}

func (hostileRunner) RunShard(run stream.ShardRun) {
	if run.Shard == 0 {
		run.Emit(stream.ShardOut{Kind: stream.ShardOutKind(99)})
		run.Emit(stream.ShardOut{Kind: stream.ShardOutRound, Round: 42})
	}
	for {
		select {
		case <-run.Stop:
			return
		case _, ok := <-run.In:
			if !ok {
				return
			}
		}
	}
}

// TestHostileRunnerFailsClosed pins the router's posture toward a
// misbehaving runner (the supervisor's worst case: a worker replying with
// corrupted emissions): the run errors out instead of folding bad rounds.
func TestHostileRunnerFailsClosed(t *testing.T) {
	mrtest.CheckGoroutines(t)
	cfg, obs := chaosWorkload(t)
	r, err := stream.NewRouter(stream.RouterConfig{
		Config: cfg,
		Shards: 2,
		Runner: hostileRunner{},
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	defer r.Close()
	var ingestErr error
	for _, o := range obs {
		if _, ingestErr = r.Ingest(o); ingestErr != nil {
			break
		}
	}
	if ingestErr == nil {
		if _, err := r.Finalize(context.Background()); err == nil {
			t.Fatalf("router accepted an out-of-order round from a hostile runner")
		}
	}
}

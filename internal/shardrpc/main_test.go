package shardrpc_test

import (
	"context"
	"os"
	"syscall"
	"testing"
	"time"

	"evmatching/internal/core"
	"evmatching/internal/dataset"
	"evmatching/internal/ids"
	"evmatching/internal/shardrpc"
	"evmatching/internal/stream"
)

// workerEnvSentinel re-execs the test binary as an evshardd worker: the
// supervisor spawns `os.Executable()` with this variable set and TestMain
// routes the child straight into WorkerMain, so the worker tests exercise
// real processes without needing a prebuilt binary on disk.
const workerEnvSentinel = "EVSHARD_WORKER"

func TestMain(m *testing.M) {
	if os.Getenv(workerEnvSentinel) == "1" {
		os.Exit(shardrpc.WorkerMain(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// workerSupervisorConfig is the base supervisor config for a real-process
// run: the test binary as worker command, a tight heartbeat so deaths are
// detected quickly, and small batches so kill schedules land mid-window.
func workerSupervisorConfig(t *testing.T) shardrpc.SupervisorConfig {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	return shardrpc.SupervisorConfig{
		Command:           []string{exe},
		Env:               []string{workerEnvSentinel + "=1"},
		HeartbeatInterval: 25 * time.Millisecond,
		BatchSize:         32,
	}
}

// assertWorkersReaped fails the test if any worker process the supervisor
// ever spawned is still alive — the process-leak half of the leak checks
// (mrtest.CheckGoroutines is the goroutine half).
func assertWorkersReaped(t *testing.T, sup *shardrpc.Supervisor) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for _, pid := range sup.PIDs() {
		for {
			// Signal 0 probes existence without delivering anything; once
			// the supervisor has killed and reaped the child it errors.
			err := syscall.Kill(pid, 0)
			if err != nil {
				break
			}
			if time.Now().After(deadline) {
				t.Errorf("worker pid %d still alive after supervisor Close", pid)
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// goldenDataset mirrors the stream package's shardDataset: the dedicated
// shard-invariance workload whose fingerprints the golden pins freeze.
func goldenDataset(t *testing.T, practical bool) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.NumPersons = 50
	cfg.Density = 6
	cfg.NumWindows = 12
	cfg.Seed = 3
	if practical {
		cfg = cfg.Practical()
		cfg.EIDMissingRate = 0.08
		cfg.VIDMissingRate = 0.04
	}
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return ds
}

// chaosWorkload mirrors the stream package's chaos workload: the practical
// dataset, its observation log, and the shared engine config.
func chaosWorkload(t *testing.T) (stream.Config, []stream.Observation) {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.NumPersons = 60
	cfg.Density = 8
	cfg.NumWindows = 16
	cfg = cfg.Practical()
	cfg.EIDMissingRate = 0.1
	cfg.VIDMissingRate = 0.05
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	targets := ds.AllEIDs()[:12]
	_, obs, err := stream.EventsFromDataset(ds, 1_000, 7)
	if err != nil {
		t.Fatalf("EventsFromDataset: %v", err)
	}
	return stream.Config{
		Targets:    targets,
		WindowMS:   1_000,
		LatenessMS: 250,
		Dim:        ds.Config.DescriptorDim(),
		Seed:       7,
		Mode:       core.ModeSerial,
		Workers:    4,
	}, obs
}

// engineConfig is the shared engine configuration over a golden dataset.
func engineConfig(ds *dataset.Dataset, targets []ids.EID, mode core.Mode) stream.Config {
	return stream.Config{
		Targets:    targets,
		WindowMS:   1_000,
		LatenessMS: 250,
		Dim:        ds.Config.DescriptorDim(),
		Seed:       7,
		Mode:       mode,
		Workers:    4,
	}
}

// batchFingerprint runs the batch SS reference under ScanInOrder.
func batchFingerprint(t *testing.T, ds *dataset.Dataset, targets []ids.EID, mode core.Mode) string {
	t.Helper()
	m, err := core.New(ds, core.Options{
		Algorithm: core.AlgorithmSS,
		Mode:      mode,
		Workers:   4,
		Seed:      7,
		ScanOrder: core.ScanInOrder,
	})
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	rep, err := m.Match(context.Background(), targets)
	if err != nil {
		t.Fatalf("batch Match: %v", err)
	}
	return rep.Fingerprint()
}

// unshardedFingerprint replays the log through a plain engine.
func unshardedFingerprint(t *testing.T, cfg stream.Config, obs []stream.Observation) string {
	t.Helper()
	e, err := stream.NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	for i, o := range obs {
		if _, err := e.Ingest(o); err != nil {
			t.Fatalf("Ingest %d: %v", i, err)
		}
	}
	rep, err := e.Finalize(context.Background())
	if err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return rep.Fingerprint()
}

// routerFingerprint replays the log through a router (any runner) and
// finalizes, requiring every in-order observation accepted.
func routerFingerprint(t *testing.T, rcfg stream.RouterConfig, obs []stream.Observation) string {
	t.Helper()
	r, err := stream.NewRouter(rcfg)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	defer r.Close()
	for i, o := range obs {
		accepted, err := r.Ingest(o)
		if err != nil {
			t.Fatalf("Ingest %d: %v", i, err)
		}
		if !accepted {
			t.Fatalf("Ingest %d: in-order observation dropped as late", i)
		}
	}
	rep, err := r.Finalize(context.Background())
	if err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return rep.Fingerprint()
}

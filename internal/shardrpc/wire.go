// Package shardrpc runs stream shard windowers as separate worker
// processes over net/rpc — the multi-node leg of the sharded streaming
// ingest tier (DESIGN.md §15).
//
// The division of labor follows the shard seam (internal/stream): all
// global state — watermark, journal, sub-checkpoints, the merge-stage
// engine — stays in the front-end Router; a worker hosts nothing but a
// stream.ShardWindower, a pure function of its message sequence. The
// Supervisor implements stream.ShardRunner by proxying each shard
// incarnation's messages to its worker in journal order and feeding the
// emissions back to the merge stage; a worker death is reported to the
// router immediately (ShardRun.Redispatch), which restarts the incarnation
// from the last sub-checkpoint plus journal replay exactly as it would for
// an in-process shard death. Because replay is deterministic and the
// merger deduplicates by round number and snapshot position, results are
// bit-identical to the in-process, unsharded, and batch paths — the
// invariance tests pin all four to one sha256.
package shardrpc

import (
	"fmt"

	"evmatching/internal/stream"
)

// ServiceName is the rpc service name workers register, mirroring
// cluster.RPCServiceName.
const ServiceName = "EVShard"

// ConfigureArgs resets a worker to host one shard incarnation, restored
// from a sub-checkpoint image. Configure is also how a restarted-in-place
// worker process is reused for the replacement incarnation: the windower is
// rebuilt from scratch, so no state survives a reconfigure.
type ConfigureArgs struct {
	Shard       int
	Incarnation int
	Params      stream.ShardParams
	Initial     []stream.ShardBucket
}

// ConfigureReply is empty; errors travel on the rpc error channel.
type ConfigureReply struct{}

// ApplyArgs applies a batch of journalled messages, in journal order, to
// the named shard incarnation. The identity pair guards against a stale
// supervisor talking to a reconfigured worker.
type ApplyArgs struct {
	Shard       int
	Incarnation int
	Msgs        []stream.ShardMsg
}

// ApplyReply carries the emissions the batch produced, in order.
type ApplyReply struct {
	Outs []stream.ShardOut
}

// PingArgs is a supervisor heartbeat probe.
type PingArgs struct {
	Seq int
}

// PingReply reports what the worker is hosting — the supervisor's liveness
// evidence, from which it renews the shard's lease.
type PingReply struct {
	Shard       int
	Incarnation int
	Steps       int64
}

// validateIdentity guards the (shard, incarnation) pair on hostile input.
func validateIdentity(shard, incarnation int) error {
	if shard < 0 {
		return fmt.Errorf("shardrpc: negative shard %d", shard)
	}
	if incarnation < 1 {
		return fmt.Errorf("shardrpc: incarnation %d out of range", incarnation)
	}
	return nil
}

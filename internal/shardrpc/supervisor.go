package shardrpc

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net/rpc"
	"os"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"evmatching/internal/cluster"
	"evmatching/internal/metrics"
	"evmatching/internal/stream"
)

// Supervisor defaults.
const (
	// DefaultHeartbeatInterval paces the per-worker Ping probes. It must be
	// much shorter than the rpc call timeout: the heartbeat replies are what
	// keep the deadline-armed connection fed while a long Apply runs.
	DefaultHeartbeatInterval = 100 * time.Millisecond
	// DefaultCallTimeout bounds peer silence on the worker connection
	// (cluster.DialRPC semantics: per-I/O deadline, not per-call).
	DefaultCallTimeout = 5 * time.Second
	// DefaultBatchSize caps how many journalled messages one Apply carries.
	DefaultBatchSize = 256
	// DefaultMaxRestarts bounds worker respawns per shard before the
	// supervisor stops burning processes and falls back in-process.
	DefaultMaxRestarts = 64
	// spawnAnnounceTimeout bounds the wait for a fresh worker's address line.
	spawnAnnounceTimeout = 10 * time.Second
	// dialAttempts is the capped-backoff dial budget against a fresh worker.
	dialAttempts = 5
)

// errStopped reports that the incarnation's Stop channel closed mid-call.
var errStopped = errors.New("shardrpc: incarnation stopped")

// SupervisorConfig parameterizes a Supervisor.
type SupervisorConfig struct {
	// Command is the worker argv: the evshardd binary plus flags. Required
	// unless every shard is meant to fall back in-process.
	Command []string
	// Env is appended to the inherited environment of each worker.
	Env []string
	// HeartbeatInterval paces liveness probes (0 = DefaultHeartbeatInterval).
	HeartbeatInterval time.Duration
	// CallTimeout bounds peer silence per rpc connection (0 = DefaultCallTimeout).
	CallTimeout time.Duration
	// BatchSize caps messages per Apply (0 = DefaultBatchSize).
	BatchSize int
	// MaxRestarts bounds respawns per shard (0 = DefaultMaxRestarts).
	MaxRestarts int
	// Metrics, when non-nil, receives the shardrpc_* gauges.
	Metrics *metrics.Registry
	// Clock times RPC latency gauges (nil = stream.SystemClock). Injected
	// so the package stays inside the wallclock lint scope.
	Clock stream.Clock
	// KillPlan, when non-nil, SIGKILLs the shard's worker before the step's
	// message is applied (chaos tests and the CI smoke's scripted kill).
	// Decisions are pure in (shard, incarnation, step), mirroring
	// stream.ShardFaultPlan.
	KillPlan func(shard, incarnation int, step int64) bool
	// Stderr, when non-nil, receives the workers' stderr.
	Stderr io.Writer
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = DefaultCallTimeout
	}
	if c.BatchSize <= 0 {
		c.BatchSize = DefaultBatchSize
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = DefaultMaxRestarts
	}
	if c.Clock == nil {
		c.Clock = stream.SystemClock{}
	}
	return c
}

// workerProc is one live worker process and its rpc client.
type workerProc struct {
	shard  int
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	client *rpc.Client
	addr   string
	waited chan struct{} // closed once cmd.Wait returns

	downOnce sync.Once
}

// alive reports whether the process has not been waited on yet.
func (p *workerProc) alive() bool {
	select {
	case <-p.waited:
		return false
	default:
		return true
	}
}

// shutdown tears the worker down: client closed, stdin EOF (the worker's
// orphan watchdog), SIGKILL for good measure, then the reaped exit. It is
// idempotent and safe from any goroutine.
func (p *workerProc) shutdown() {
	p.downOnce.Do(func() {
		if p.client != nil {
			p.client.Close()
		}
		if p.stdin != nil {
			p.stdin.Close()
		}
		if p.cmd != nil && p.cmd.Process != nil {
			p.cmd.Process.Kill()
		}
		<-p.waited
	})
}

// shardGaugeNames are one shard's precomputed metric keys.
type shardGaugeNames struct {
	applyUS string
	applies string
}

// Supervisor hosts shard windowers in worker processes: it implements
// stream.ShardRunner by proxying each incarnation's message stream to its
// shard's worker over net/rpc and feeding the emissions back to the
// router's merge stage. Worker death — observed as a failed Apply, a failed
// heartbeat, or a scripted kill — is reported to the router immediately via
// ShardRun.Redispatch; the replacement incarnation reuses the restarted (or
// respawned) process via Configure, restored from the router's
// sub-checkpoint plus journal replay. When no worker can be had (spawn
// failure, restart budget exhausted, supervisor closed) the shard falls
// back to stream.RunShardInProcess, trading process isolation for
// availability without affecting results.
//
// A Supervisor may serve many shards and many successive incarnations; it
// must be Closed to reap its worker processes.
type Supervisor struct {
	cfg SupervisorConfig

	mu       sync.Mutex
	closed   bool
	procs    map[int]*workerProc
	spawns   map[int]int // per-shard spawn count, bounds restarts
	pids     []int       // every pid ever spawned (leak checks)
	applies  map[int]int64
	gaugeFor map[int]shardGaugeNames

	spawned      atomic.Int64
	kills        atomic.Int64
	retries      atomic.Int64
	redispatches atomic.Int64
	fallbacks    atomic.Int64
}

// SupervisorStats is a snapshot of the supervisor's counters.
type SupervisorStats struct {
	// Spawned counts worker processes ever started.
	Spawned int64
	// Kills counts scripted KillPlan SIGKILLs delivered.
	Kills int64
	// Retries counts failed worker calls (Apply or heartbeat).
	Retries int64
	// Redispatches counts worker deaths reported to the router.
	Redispatches int64
	// Fallbacks counts incarnations run in-process for want of a worker.
	Fallbacks int64
	// Live is the number of worker processes currently up.
	Live int
}

// NewSupervisor builds a supervisor; it spawns lazily, one worker per shard
// on the shard's first incarnation.
func NewSupervisor(cfg SupervisorConfig) *Supervisor {
	return &Supervisor{
		cfg:      cfg.withDefaults(),
		procs:    make(map[int]*workerProc),
		spawns:   make(map[int]int),
		applies:  make(map[int]int64),
		gaugeFor: make(map[int]shardGaugeNames),
	}
}

// RunShard implements stream.ShardRunner.
func (s *Supervisor) RunShard(run stream.ShardRun) {
	proc, err := s.procFor(run.Shard)
	if err == nil {
		err = s.call(proc, run.Stop, "Configure", &ConfigureArgs{
			Shard:       run.Shard,
			Incarnation: run.Incarnation,
			Params:      run.Params,
			Initial:     run.Initial,
		}, &ConfigureReply{})
		if errors.Is(err, errStopped) {
			return
		}
		if err != nil {
			// The worker accepted a connection but cannot host the shard;
			// treat it as dead rather than guess at its state.
			s.retries.Add(1)
			s.removeProc(run.Shard, proc)
		}
	}
	if err != nil {
		s.fallbacks.Add(1)
		s.publishCounters()
		stream.RunShardInProcess(run)
		return
	}
	s.publishCounters()
	s.proxyLoop(proc, run)
}

// procFor returns the shard's live worker, spawning (or respawning) one if
// needed. The spawn happens under s.mu so a shard never gets two processes.
func (s *Supervisor) procFor(shard int) (*workerProc, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("shardrpc: supervisor closed")
	}
	if p := s.procs[shard]; p != nil {
		if p.alive() {
			return p, nil
		}
		delete(s.procs, shard)
		go p.shutdown() // reap the corpse off the spawn path
	}
	if s.spawns[shard] > s.cfg.MaxRestarts {
		return nil, fmt.Errorf("shardrpc: shard %d exhausted %d restarts", shard, s.cfg.MaxRestarts)
	}
	p, err := s.spawnLocked(shard)
	if err != nil {
		return nil, err
	}
	s.procs[shard] = p
	return p, nil
}

// spawnLocked starts one worker process and dials it. Callers hold s.mu.
func (s *Supervisor) spawnLocked(shard int) (*workerProc, error) {
	if len(s.cfg.Command) == 0 {
		return nil, errors.New("shardrpc: no worker command configured")
	}
	s.spawns[shard]++
	cmd := exec.Command(s.cfg.Command[0], s.cfg.Command[1:]...)
	cmd.Env = append(os.Environ(), s.cfg.Env...)
	if s.cfg.Stderr != nil {
		cmd.Stderr = s.cfg.Stderr
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("shardrpc: worker stdin: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("shardrpc: worker stdout: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("shardrpc: start worker: %w", err)
	}
	s.spawned.Add(1)
	s.pids = append(s.pids, cmd.Process.Pid)
	waited := make(chan struct{})
	go func() {
		cmd.Wait()
		close(waited)
	}()
	proc := &workerProc{shard: shard, cmd: cmd, stdin: stdin, waited: waited}

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		if sc.Scan() {
			if addr, ok := strings.CutPrefix(sc.Text(), "listening "); ok {
				addrCh <- addr
			}
		}
		io.Copy(io.Discard, stdout)
	}()
	select {
	case proc.addr = <-addrCh:
	case <-waited:
		proc.shutdown()
		return nil, fmt.Errorf("shardrpc: worker for shard %d exited before announcing its address", shard)
	case <-time.After(spawnAnnounceTimeout):
		proc.shutdown()
		return nil, fmt.Errorf("shardrpc: worker for shard %d never announced its address", shard)
	}
	client, err := cluster.DialRPC(proc.addr, s.cfg.CallTimeout, dialAttempts)
	if err != nil {
		proc.shutdown()
		return nil, fmt.Errorf("shardrpc: dial worker for shard %d: %w", shard, err)
	}
	proc.client = client
	return proc, nil
}

// call runs one rpc against the worker, abandoning the wait (not the
// worker) if the incarnation stops first. The connection's per-I/O deadline
// plus the heartbeat traffic guarantee the call itself cannot hang forever.
func (s *Supervisor) call(proc *workerProc, stop <-chan struct{}, method string, args, reply any) error {
	c := proc.client.Go(ServiceName+"."+method, args, reply, make(chan *rpc.Call, 1))
	select {
	case done := <-c.Done:
		return done.Error
	case <-stop:
		return errStopped
	}
}

// proxyLoop drives one configured incarnation: journal messages batch up
// into Apply calls, emissions flow back to the merge stage, and a
// heartbeat goroutine renews the shard's lease from real Ping replies. Any
// worker failure ends the loop through failover, which reports the death
// to the router at once.
func (s *Supervisor) proxyLoop(proc *workerProc, run stream.ShardRun) {
	var failOnce sync.Once
	failover := func() {
		failOnce.Do(func() {
			s.removeProc(run.Shard, proc)
			s.redispatches.Add(1)
			s.publishCounters()
			if run.Redispatch != nil {
				run.Redispatch()
			}
		})
	}

	var hbWG sync.WaitGroup
	defer hbWG.Wait()
	hbStop := make(chan struct{})
	defer close(hbStop)
	hbWG.Add(1)
	go s.heartbeat(proc, run, hbStop, &hbWG, failover)

	batch := make([]stream.ShardMsg, 0, s.cfg.BatchSize)
	var step int64
	killed := false
	for {
		batch = batch[:0]
		select {
		case <-run.Stop:
			return
		case m := <-run.In:
			batch = append(batch, m)
		}
	drain:
		for len(batch) < s.cfg.BatchSize {
			select {
			case m := <-run.In:
				batch = append(batch, m)
			default:
				break drain
			}
		}
		if s.cfg.KillPlan != nil && !killed {
			for range batch {
				step++
				if s.cfg.KillPlan(run.Shard, run.Incarnation, step) {
					// SIGKILL before the batch lands: the messages die with
					// the process and come back via journal replay.
					if proc.cmd != nil && proc.cmd.Process != nil {
						proc.cmd.Process.Kill()
					}
					s.kills.Add(1)
					killed = true
					break
				}
			}
		}
		start := s.cfg.Clock.Now()
		var reply ApplyReply
		err := s.call(proc, run.Stop, "Apply", &ApplyArgs{
			Shard:       run.Shard,
			Incarnation: run.Incarnation,
			Msgs:        batch,
		}, &reply)
		if errors.Is(err, errStopped) {
			return
		}
		if err != nil {
			s.retries.Add(1)
			failover()
			return
		}
		s.observeApply(run.Shard, s.cfg.Clock.Now().Sub(start))
		for i := range reply.Outs {
			if !run.Emit(reply.Outs[i]) {
				return
			}
		}
	}
}

// heartbeat probes the worker and renews the shard's lease from real
// replies — the router's liveness evidence for a remote shard. A failed
// probe is a worker death: fail over immediately instead of waiting out
// the lease.
func (s *Supervisor) heartbeat(proc *workerProc, run stream.ShardRun, stop <-chan struct{}, wg *sync.WaitGroup, failover func()) {
	defer wg.Done()
	tick := time.NewTicker(s.cfg.HeartbeatInterval)
	defer tick.Stop()
	seq := 0
	for {
		select {
		case <-stop:
			return
		case <-run.Stop:
			return
		case <-tick.C:
		}
		seq++
		var reply PingReply
		c := proc.client.Go(ServiceName+".Ping", &PingArgs{Seq: seq}, &reply, make(chan *rpc.Call, 1))
		select {
		case done := <-c.Done:
			if done.Error != nil {
				s.retries.Add(1)
				failover()
				return
			}
			if run.Renew != nil && !run.Renew() {
				return // superseded; the replacement runner renews now
			}
		case <-stop:
			return
		case <-run.Stop:
			return
		}
	}
}

// removeProc drops the proc from the table (if still current) and tears it
// down.
func (s *Supervisor) removeProc(shard int, proc *workerProc) {
	s.mu.Lock()
	if s.procs[shard] == proc {
		delete(s.procs, shard)
	}
	s.mu.Unlock()
	proc.shutdown()
}

// observeApply publishes one Apply's latency and the shard's apply count.
func (s *Supervisor) observeApply(shard int, d time.Duration) {
	if s.cfg.Metrics == nil {
		return
	}
	s.mu.Lock()
	g, ok := s.gaugeFor[shard]
	if !ok {
		g = shardGaugeNames{
			applyUS: fmt.Sprintf("shardrpc_shard%d_apply_us", shard),
			applies: fmt.Sprintf("shardrpc_shard%d_applies", shard),
		}
		s.gaugeFor[shard] = g
	}
	s.applies[shard]++
	n := s.applies[shard]
	s.mu.Unlock()
	s.cfg.Metrics.Set(g.applyUS, d.Microseconds())
	s.cfg.Metrics.Set(g.applies, n)
}

// publishCounters pushes the global shardrpc gauges.
func (s *Supervisor) publishCounters() {
	if s.cfg.Metrics == nil {
		return
	}
	s.mu.Lock()
	live := int64(len(s.procs))
	s.mu.Unlock()
	s.cfg.Metrics.SetMany(map[string]int64{
		"shardrpc_workers_spawned": s.spawned.Load(),
		"shardrpc_workers_live":    live,
		"shardrpc_kills":           s.kills.Load(),
		"shardrpc_retries":         s.retries.Load(),
		"shardrpc_redispatches":    s.redispatches.Load(),
		"shardrpc_fallbacks":       s.fallbacks.Load(),
	})
}

// Stats snapshots the supervisor's counters.
func (s *Supervisor) Stats() SupervisorStats {
	s.mu.Lock()
	live := len(s.procs)
	s.mu.Unlock()
	return SupervisorStats{
		Spawned:      s.spawned.Load(),
		Kills:        s.kills.Load(),
		Retries:      s.retries.Load(),
		Redispatches: s.redispatches.Load(),
		Fallbacks:    s.fallbacks.Load(),
		Live:         live,
	}
}

// PIDs returns every worker pid the supervisor ever spawned, in spawn
// order — the leak tests' kill list.
func (s *Supervisor) PIDs() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.pids...)
}

// Close tears down every worker process and marks the supervisor unusable
// for new incarnations (late RunShard calls fall back in-process). It is
// idempotent.
func (s *Supervisor) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	shards := make([]int, 0, len(s.procs))
	for shard := range s.procs {
		shards = append(shards, shard)
	}
	sort.Ints(shards)
	procs := make([]*workerProc, 0, len(shards))
	for _, shard := range shards {
		procs = append(procs, s.procs[shard])
		delete(s.procs, shard)
	}
	s.mu.Unlock()
	for _, p := range procs {
		p.shutdown()
	}
	s.publishCounters()
	return nil
}

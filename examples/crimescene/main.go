// Crime scene: the paper's motivating scenario (§I). A crime happened in a
// known cell at a known time; the police hold the EIDs that were captured
// around the scene. EV-Matching finds the visual identity of each holder so
// their activities can be followed through the surveillance footage —
// without scanning the massive video archive linearly.
package main

import (
	"context"
	"fmt"
	"log"

	"evmatching"
	"evmatching/internal/geo"
)

func main() {
	cfg := evmatching.DefaultDatasetConfig()
	cfg.NumPersons = 500
	cfg.Density = 30
	cfg.NumWindows = 48
	ds, err := evmatching.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The incident: window 17, in the cell covering the point (420, 610).
	// Pull the E-Scenario recorded there — its EID set is exactly what an
	// investigator would lift from the base-station logs.
	sceneCell := ds.Layout.CellOf(geo.Pt(420, 610))
	const sceneWindow = 17
	var suspects []evmatching.EID
	for _, id := range ds.Store.AtWindow(sceneWindow) {
		e := ds.Store.E(id)
		if e.Cell == sceneCell {
			suspects = e.SortedEIDs()
			break
		}
	}
	if len(suspects) == 0 {
		log.Fatalf("no E-Scenario recorded at cell %d window %d", sceneCell, sceneWindow)
	}
	fmt.Printf("crime scene: cell %d, window %d — %d EIDs captured nearby\n",
		sceneCell, sceneWindow, len(suspects))

	// Match only those EIDs (elastic matching size): the whole archive is
	// never scanned, only the scenarios that distinguish the suspects.
	rep, err := evmatching.Match(context.Background(), ds, evmatching.Options{}, suspects)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("processed %d of %d stored scenarios (%.1f%%)\n\n",
		rep.SelectedScenarios, ds.Store.Len(),
		100*float64(rep.SelectedScenarios)/float64(ds.Store.Len()))

	for _, e := range rep.Targets {
		res := rep.Results[e]
		fmt.Printf("  suspect %s  ->  appearance %-8s  (confidence %.0f%%)\n",
			e, res.VID, res.MajorityFrac*100)
	}
	fmt.Printf("\nidentification accuracy vs ground truth: %.1f%%\n",
		rep.Accuracy(ds.TruthVID)*100)
}

// Streaming: online EV-Matching over live surveillance. Windows of
// scenarios arrive one at a time; the session refines its EID partition
// incrementally and can report its current best matches at any moment —
// watch identification quality converge as evidence accumulates.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"evmatching"
)

func main() {
	cfg := evmatching.DefaultDatasetConfig()
	cfg.NumPersons = 300
	cfg.Density = 20
	cfg.NumWindows = 24
	ds, err := evmatching.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	m, err := evmatching.NewMatcher(ds, evmatching.Options{})
	if err != nil {
		log.Fatal(err)
	}

	targets := ds.SampleEIDs(40, rand.New(rand.NewSource(5)))
	session, err := m.NewSession(targets)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	fmt.Printf("online matching of %d EIDs over %d streamed windows:\n\n", len(targets), cfg.NumWindows)
	fmt.Println("window  distinguished  accuracy")
	for w := 0; w < cfg.NumWindows; w++ {
		if err := session.Advance(w); err != nil {
			log.Fatal(err)
		}
		// Report every few windows (matching is cheap but not free).
		if w%4 != 3 && !session.Distinguished() {
			continue
		}
		results, err := session.Match(ctx)
		if err != nil {
			log.Fatal(err)
		}
		correct := 0
		for _, e := range targets {
			if results[e].VID == ds.TruthVID(e) {
				correct++
			}
		}
		fmt.Printf("%6d  %8d/%d     %5.1f%%\n",
			w+1, session.Resolved(), len(targets),
			100*float64(correct)/float64(len(targets)))
		if session.Distinguished() && w >= 7 {
			fmt.Println("\nall targets distinguished; stream can keep strengthening weak matches")
			break
		}
	}
}

// Practical setting: the real world is messy (paper §IV-C). E-localization
// noise drifts EIDs into neighbor cells, some people carry no device at all
// (missing EIDs), and detectors miss people (missing VIDs). This example
// generates such a world — multi-tick windows with inclusive/vague zone
// attribution absorbing the drift — and shows matching refining recovering
// accuracy that a single pass loses.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"evmatching"
)

func main() {
	cfg := evmatching.DefaultDatasetConfig().Practical()
	cfg.NumPersons = 400
	cfg.Density = 25
	cfg.NumWindows = 40
	cfg.EIDMissingRate = 0.15 // 15% of people carry no device
	cfg.VIDMissingRate = 0.05 // 5% of detections are missed
	ds, err := evmatching.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("practical world: %d persons, %d with devices, drift sigma %.0f m, vague zone %.0f m\n",
		len(ds.Persons), len(ds.AllEIDs()), cfg.ELocNoise, cfg.VagueWidth)

	ctx := context.Background()
	targets := ds.SampleEIDs(100, rand.New(rand.NewSource(3)))

	// One-shot matching: whatever the first pass produces is final.
	oneShot, err := evmatching.Match(ctx, ds, evmatching.Options{
		AcceptMajority: 0.01, // accept anything: refining never triggers
	}, targets)
	if err != nil {
		log.Fatal(err)
	}

	// Matching refining (paper Algorithm 2): EIDs whose vote is weak go
	// through set splitting and VID filtering again, with already-accepted
	// VIDs ruled out.
	refined, err := evmatching.Match(ctx, ds, evmatching.Options{
		AcceptMajority:  0.6,
		MaxRefineRounds: 3,
	}, targets)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\none-shot:  accuracy %.1f%% (scenarios %d)\n",
		oneShot.Accuracy(ds.TruthVID)*100, oneShot.SelectedScenarios)
	fmt.Printf("refining:  accuracy %.1f%% (scenarios %d, %d extra rounds)\n",
		refined.Accuracy(ds.TruthVID)*100, refined.SelectedScenarios, refined.RefineRounds)

	// Residual unmatched or weak EIDs would go to a human operator; the
	// algorithm still shoulders the bulk of the workload (paper §I).
	weak := 0
	for _, res := range refined.Results {
		if res.VID == evmatching.NoVID || !res.Acceptable {
			weak++
		}
	}
	fmt.Printf("left for human review: %d of %d EIDs\n", weak, len(targets))
}

// Quickstart: generate a small synthetic EV world and match a handful of
// device identities (EIDs) to the visual identities (VIDs) of the people
// carrying them, using nothing but spatiotemporal co-occurrence.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"evmatching"
)

func main() {
	// A 300-person world on a 1000 m × 1000 m region; everything —
	// trajectories, WiFi MACs, appearances — is derived from the seed.
	cfg := evmatching.DefaultDatasetConfig()
	cfg.NumPersons = 300
	cfg.Density = 20 // persons per camera cell
	cfg.NumWindows = 32
	ds, err := evmatching.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("world: %d persons, %d cells, %d EV-Scenarios\n",
		len(ds.Persons), ds.Layout.NumCells(), ds.Store.Len())

	// Pick 20 EIDs of interest and match them. The zero Options run the
	// paper's set-splitting algorithm serially.
	targets := ds.SampleEIDs(20, rand.New(rand.NewSource(7)))
	rep, err := evmatching.Match(context.Background(), ds, evmatching.Options{}, targets)
	if err != nil {
		log.Fatal(err)
	}

	for _, e := range rep.Targets {
		res := rep.Results[e]
		verdict := "WRONG"
		if res.VID == ds.TruthVID(e) {
			verdict = "ok"
		}
		fmt.Printf("  %s -> %-8s (vote %.0f%%, %d scenarios)  %s\n",
			e, res.VID, res.MajorityFrac*100, rep.PerEID[e], verdict)
	}
	fmt.Printf("accuracy: %.1f%%  unique scenarios processed: %d  E: %v  V: %v\n",
		rep.Accuracy(ds.TruthVID)*100, rep.SelectedScenarios, rep.ETime, rep.VTime)
}

// Fusion queries: after universal matching, the E and V datasets become one
// queryable whole (paper §I — "retrieve the E and V information for a person
// at the same time with one single query"). This example labels a world
// universally, builds the fusion index, and answers three investigator-style
// questions: which appearance carries this device, where has this device
// holder been (fused trajectory across both modalities), and who — devices
// and faces — was in a given cell at a given time.
package main

import (
	"context"
	"fmt"
	"log"

	"evmatching"
)

func main() {
	cfg := evmatching.DefaultDatasetConfig()
	cfg.NumPersons = 300
	cfg.Density = 20
	cfg.NumWindows = 32
	cfg.VIDMissingRate = 0.05 // a few missed detections: E data fills the gaps
	ds, err := evmatching.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Universal matching, then the fused index.
	m, err := evmatching.NewMatcher(ds, evmatching.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := m.MatchAll(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	idx, err := evmatching.BuildFusionIndex(ds, rep)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("universal matching: %d/%d EIDs indexed (accuracy %.1f%%)\n\n",
		idx.Len(), len(rep.Targets), rep.Accuracy(ds.TruthVID)*100)

	// Query 1: which appearance carries this device?
	device := ds.AllEIDs()[42]
	vid, err := idx.VIDOf(device)
	if err != nil {
		log.Fatal(err)
	}
	conf, err := idx.Confidence(device)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q1  device %s is carried by appearance %s (confidence %.0f%%)\n\n",
		device, vid, conf*100)

	// Query 2: where has the holder been? The fused trajectory merges
	// E-locations (device sightings) and V-locations (camera detections);
	// where the camera missed the person, the device still places them.
	sightings, err := idx.FusedTrajectory(device)
	if err != nil {
		log.Fatal(err)
	}
	eOnly, vOnly, both := 0, 0, 0
	for _, s := range sightings {
		switch {
		case s.Electronic && s.Visual:
			both++
		case s.Electronic:
			eOnly++
		default:
			vOnly++
		}
	}
	fmt.Printf("Q2  fused trajectory: %d sightings (%d both, %d device-only, %d camera-only)\n",
		len(sightings), both, eOnly, vOnly)
	for _, s := range sightings[:3] {
		fmt.Printf("     window %2d: cell %2d at %v  [E=%v V=%v]\n",
			s.Window, s.Cell, s.Pos, s.Electronic, s.Visual)
	}
	fmt.Println("     ...")

	// Query 3: who was in that cell at window 10 — devices and faces fused.
	where, ok, err := idx.WhereWas(device, 10)
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		log.Fatal("holder unseen at window 10")
	}
	present, err := idx.WhoWasAt(where.Cell, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQ3  cell %d at window 10 had %d people:\n", where.Cell, len(present))
	for i, p := range present {
		if i == 6 {
			fmt.Printf("     ... and %d more\n", len(present)-6)
			break
		}
		eid := string(p.EID)
		if eid == "" {
			eid = "(no device)"
		}
		vid := string(p.VID)
		if vid == "" {
			vid = "(not on camera)"
		}
		fmt.Printf("     %-17s  <->  %s\n", eid, vid)
	}
}

// Universal matching: label EVERY device identity in the dataset with its
// visual identity in one pass (paper §I). After universal labeling, future
// queries hit an index instead of raw video. The example also demonstrates
// the paper's elastic-matching claim — the larger the matching size, the
// lower the cost per EID-VID pair — and runs the big pass on the
// MapReduce-parallelized mode.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"evmatching"
)

func main() {
	cfg := evmatching.DefaultDatasetConfig()
	cfg.NumPersons = 400
	cfg.Density = 25
	cfg.NumWindows = 40
	ds, err := evmatching.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))

	// Elastic matching sizes: single EID, a group, and the universal set.
	fmt.Println("matching size sweep (serial):")
	for _, n := range []int{1, 20, 100, len(ds.AllEIDs())} {
		targets := ds.SampleEIDs(n, rng)
		rep, err := evmatching.Match(ctx, ds, evmatching.Options{}, targets)
		if err != nil {
			log.Fatal(err)
		}
		perPair := rep.TotalTime() / time.Duration(len(targets))
		fmt.Printf("  %4d EIDs: total %-10v per pair %-10v scenarios %d\n",
			len(targets), rep.TotalTime().Round(time.Millisecond),
			perPair.Round(time.Microsecond), rep.SelectedScenarios)
	}

	// Universal labeling on the parallel (MapReduce) mode: every EID in the
	// dataset gets its VID.
	m, err := evmatching.NewMatcher(ds, evmatching.Options{
		Mode:    evmatching.ModeParallel,
		Workers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	rep, err := m.MatchAll(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nuniversal labeling: %d EIDs matched in %v (accuracy %.1f%%)\n",
		len(rep.Targets), time.Since(start).Round(time.Millisecond),
		rep.Accuracy(ds.TruthVID)*100)

	// The resulting index: EID -> VID, ready for future constant-time
	// queries that fuse both data sources.
	index := make(map[evmatching.EID]evmatching.VID, len(rep.Targets))
	for e, res := range rep.Results {
		if res.VID != evmatching.NoVID {
			index[e] = res.VID
		}
	}
	probe := rep.Targets[len(rep.Targets)/2]
	fmt.Printf("index example: who carries %s? -> %s\n", probe, index[probe])
}

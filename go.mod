module evmatching

go 1.22

// Package evmatching reproduces EV-Matching (Li et al., ICDCS 2017):
// matching electronic identities (EIDs — WiFi MACs, IMSIs captured by
// network infrastructure) to visual identities (VIDs — person appearances in
// surveillance video) purely from their spatiotemporal co-occurrence.
//
// The library generates synthetic EV worlds (random-waypoint mobility,
// appearance galleries, E-localization noise, missing data), runs the
// paper's set-splitting algorithm with VID filtering and matching refining,
// compares against the EDP baseline, and parallelizes both stages on a
// from-scratch MapReduce engine with an optional distributed runtime over
// net/rpc.
//
// Quick start:
//
//	ds, err := evmatching.Generate(evmatching.DefaultDatasetConfig())
//	m, err := evmatching.NewMatcher(ds, evmatching.Options{})
//	report, err := m.Match(ctx, ds.SampleEIDs(100, rng))
//	fmt.Println(report.Accuracy(ds.TruthVID))
package evmatching

import (
	"context"
	"io"

	"evmatching/internal/core"
	"evmatching/internal/dataset"
	"evmatching/internal/elocal"
	"evmatching/internal/experiments"
	"evmatching/internal/fusion"
	"evmatching/internal/ids"
	"evmatching/internal/trajectory"
	"evmatching/internal/vfilter"
)

// Identity types.
type (
	// EID is an electronic identity (e.g. a WiFi MAC address).
	EID = ids.EID
	// VID is a visual identity label.
	VID = ids.VID
)

// Identity sentinels.
const (
	// NoEID marks a person carrying no electronic device.
	NoEID = ids.None
	// NoVID marks a failed or missing visual identification.
	NoVID = ids.NoVID
)

// Dataset types.
type (
	// DatasetConfig parameterizes synthetic world generation.
	DatasetConfig = dataset.Config
	// Dataset is a generated EV world: scenarios plus ground truth.
	Dataset = dataset.Dataset
	// Person is one simulated human object.
	Person = dataset.Person
)

// Layout kinds for DatasetConfig.Layout.
const (
	LayoutGrid = dataset.LayoutGrid
	LayoutHex  = dataset.LayoutHex
)

// ELocalConfig parameterizes the RSSI localization substrate (base
// stations, path loss, shadowing, multilateration) selectable through
// DatasetConfig.ELocal.
type ELocalConfig = elocal.Config

// DefaultELocalConfig returns a WiFi-like deployment: 25 stations per square
// kilometer with moderate urban shadowing.
func DefaultELocalConfig() ELocalConfig { return elocal.DefaultConfig() }

// Matcher types.
type (
	// Options parameterizes a Matcher.
	Options = core.Options
	// Matcher matches EIDs to VIDs over one dataset.
	Matcher = core.Matcher
	// Report is the outcome of one matching run.
	Report = core.Report
	// MatchResult is the per-EID outcome.
	MatchResult = vfilter.Result
)

// Algorithm and mode selectors for Options.
const (
	// AlgorithmSS is the paper's set-splitting EV-Matching (the default).
	AlgorithmSS = core.AlgorithmSS
	// AlgorithmEDP is the per-EID baseline of Teng et al.
	AlgorithmEDP = core.AlgorithmEDP
	// ModeSerial runs the reference single-threaded stages (the default).
	ModeSerial = core.ModeSerial
	// ModeParallel runs the MapReduce-parallelized stages.
	ModeParallel = core.ModeParallel
)

// DefaultDatasetConfig returns the paper's evaluation setup: 1000 human
// objects with WiFi-MAC EIDs moving by random waypoint across a
// 1000 m × 1000 m cell grid, under the ideal setting.
func DefaultDatasetConfig() DatasetConfig { return dataset.DefaultConfig() }

// ScaleDatasetConfig returns a named scale preset — a world shape at the
// sizes the blocking index (DESIGN.md §13) is built for. See
// ScalePresetNames for the accepted names.
func ScaleDatasetConfig(name string) (DatasetConfig, error) { return dataset.ScalePreset(name) }

// ScalePresetNames lists the preset names ScaleDatasetConfig accepts.
func ScalePresetNames() []string { return dataset.ScalePresetNames() }

// Generate builds a synthetic EV world. Generation is deterministic in the
// configuration, including its Seed.
func Generate(cfg DatasetConfig) (*Dataset, error) { return dataset.Generate(cfg) }

// LoadDataset reads a dataset written by (*Dataset).SaveFile.
func LoadDataset(path string) (*Dataset, error) { return dataset.LoadFile(path) }

// NewMatcher creates a matcher over the dataset. The zero Options selects
// the SS algorithm in serial mode with the paper's defaults.
func NewMatcher(ds *Dataset, opts Options) (*Matcher, error) { return core.New(ds, opts) }

// Match is a convenience wrapper: generate a matcher with opts and match the
// targets in one call.
func Match(ctx context.Context, ds *Dataset, opts Options, targets []EID) (*Report, error) {
	m, err := core.New(ds, opts)
	if err != nil {
		return nil, err
	}
	return m.Match(ctx, targets)
}

// Fusion types: the fused EV index produced after matching, answering
// single queries over both data sources (paper §I).
type (
	// FusionIndex is the bidirectional EID-VID index of a matching run.
	FusionIndex = fusion.Index
	// Sighting is one fused (electronic and/or visual) observation.
	Sighting = fusion.Sighting
	// Presence is one fused identity observed at a queried cell/window.
	Presence = fusion.Presence
)

// BuildFusionIndex folds a matching report into a fused-query index over the
// dataset: VIDOf/EIDOf lookups, fused trajectories, and who-was-where
// queries spanning both modalities.
func BuildFusionIndex(ds *Dataset, rep *Report) (*FusionIndex, error) {
	return fusion.BuildIndex(ds, rep)
}

// Trajectory types (paper §III): one E-Trajectory per device, multiple
// V-Trajectory segments per appearance.
type (
	// ETrajectory is an EID's E-Location history.
	ETrajectory = trajectory.ETrajectory
	// VTrajectory is a VID's V-Location history, split into segments.
	VTrajectory = trajectory.VTrajectory
)

// BuildETrajectory extracts an EID's coarse trajectory from the dataset.
func BuildETrajectory(ds *Dataset, e EID) (*ETrajectory, error) {
	return trajectory.BuildE(ds.Store, e)
}

// BuildVTrajectory extracts a VID's trajectory segments; a new segment
// starts whenever the VID is unseen for more than maxGap windows.
func BuildVTrajectory(ds *Dataset, v VID, maxGap int) (*VTrajectory, error) {
	return trajectory.BuildV(ds.Store, v, maxGap)
}

// TrajectorySimilarity scores how spatiotemporally close an E-Trajectory and
// a V-Trajectory are, in [0, 1].
func TrajectorySimilarity(ds *Dataset, et *ETrajectory, vt *VTrajectory) (float64, error) {
	return trajectory.Similarity(et, vt, ds.Layout.Bounds())
}

// Experiment configurations.
type ExperimentConfig = experiments.Config

// PaperExperiments returns the full-scale sweep configuration of §VI.
func PaperExperiments() ExperimentConfig { return experiments.Paper() }

// QuickExperiments returns a shrunken sweep for fast runs.
func QuickExperiments() ExperimentConfig { return experiments.Quick() }

// RunExperiments regenerates every table and figure of the paper's
// evaluation, writing results to w and progress lines to progress (nil
// discards them).
func RunExperiments(ctx context.Context, cfg ExperimentConfig, w, progress io.Writer) error {
	r, err := experiments.NewRunner(cfg, progress)
	if err != nil {
		return err
	}
	return r.RunAll(ctx, w)
}

package evmatching

import (
	"bytes"
	"context"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

// smallWorld generates a compact dataset for facade tests.
func smallWorld(t *testing.T) *Dataset {
	t.Helper()
	cfg := DefaultDatasetConfig()
	cfg.NumPersons = 100
	cfg.Density = 10
	cfg.NumWindows = 16
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestFacadeEndToEnd(t *testing.T) {
	ds := smallWorld(t)
	targets := ds.SampleEIDs(25, rand.New(rand.NewSource(1)))
	rep, err := Match(context.Background(), ds, Options{}, targets)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Accuracy(ds.TruthVID); got < 0.7 {
		t.Errorf("accuracy = %v", got)
	}
	if rep.Algorithm != AlgorithmSS || rep.Mode != ModeSerial {
		t.Errorf("defaults: %v %v", rep.Algorithm, rep.Mode)
	}
}

func TestFacadeMatcherReuse(t *testing.T) {
	ds := smallWorld(t)
	m, err := NewMatcher(ds, Options{Algorithm: AlgorithmEDP})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2; i++ {
		rep, err := m.Match(context.Background(), ds.SampleEIDs(10, rng))
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Results) != 10 {
			t.Errorf("run %d: results = %d", i, len(rep.Results))
		}
	}
}

func TestFacadeSaveLoad(t *testing.T) {
	ds := smallWorld(t)
	path := filepath.Join(t.TempDir(), "w.gob")
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Store.Len() != ds.Store.Len() {
		t.Errorf("store len %d != %d", got.Store.Len(), ds.Store.Len())
	}
}

func TestRunExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep skipped in -short mode")
	}
	var out, progress bytes.Buffer
	if err := RunExperiments(context.Background(), QuickExperiments(), &out, &progress); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig 5", "Table I", "Fig 11"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
	if !strings.Contains(progress.String(), "# run") {
		t.Error("progress log empty")
	}
}

func TestPaperExperimentsConfigSane(t *testing.T) {
	cfg := PaperExperiments()
	if cfg.Base.NumPersons != 1000 {
		t.Errorf("paper persons = %d", cfg.Base.NumPersons)
	}
	if len(cfg.EIDCounts) != 9 || cfg.EIDCounts[0] != 100 || cfg.EIDCounts[8] != 900 {
		t.Errorf("paper EID sweep = %v", cfg.EIDCounts)
	}
}

package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"evmatching/internal/core"
	"evmatching/internal/dataset"
	"evmatching/internal/ids"
	"evmatching/internal/stream"
)

// writeTestLog generates a small practical world and flattens it into an
// observation log on disk, returning the dataset for batch comparison.
func writeTestLog(t *testing.T, dir string) (*dataset.Dataset, string) {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.NumPersons = 50
	cfg.Density = 8
	cfg.NumWindows = 10
	cfg = cfg.Practical()
	cfg.EIDMissingRate = 0.1
	cfg.VIDMissingRate = 0.05
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	hdr, obs, err := stream.EventsFromDataset(ds, 1_000, 7)
	if err != nil {
		t.Fatalf("EventsFromDataset: %v", err)
	}
	path := filepath.Join(dir, "obs.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("create log: %v", err)
	}
	if err := stream.WriteLog(f, hdr, obs); err != nil {
		t.Fatalf("WriteLog: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close log: %v", err)
	}
	return ds, path
}

// batchHash runs the batch SS reference with the options the CLI defaults to
// and returns the sha256 the CLI should print.
func batchHash(t *testing.T, ds *dataset.Dataset, targets []ids.EID, seed int64) string {
	t.Helper()
	m, err := core.New(ds, core.Options{
		Algorithm: core.AlgorithmSS,
		Mode:      core.ModeSerial,
		Seed:      seed,
		ScanOrder: core.ScanInOrder,
	})
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	rep, err := m.Match(context.Background(), targets)
	if err != nil {
		t.Fatalf("batch Match: %v", err)
	}
	sum := sha256.Sum256([]byte(rep.Fingerprint()))
	return hex.EncodeToString(sum[:])
}

var hashRE = regexp.MustCompile(`sha256=([0-9a-f]{64})`)

func extractHash(t *testing.T, output string) string {
	t.Helper()
	m := hashRE.FindStringSubmatch(output)
	if m == nil {
		t.Fatalf("no fingerprint hash in output:\n%s", output)
	}
	return m[1]
}

func targetsFlag(ds *dataset.Dataset, n int) (string, []ids.EID) {
	targets := ds.AllEIDs()[:n]
	parts := make([]string, len(targets))
	for i, e := range targets {
		parts[i] = string(e)
	}
	return strings.Join(parts, ","), targets
}

// TestRunReplayMatchesBatch is the CLI-level golden invariant: a full replay
// through evstream prints the same fingerprint hash as the batch SS run over
// the original dataset.
func TestRunReplayMatchesBatch(t *testing.T) {
	dir := t.TempDir()
	ds, logPath := writeTestLog(t, dir)
	flag, targets := targetsFlag(ds, 12)
	var buf bytes.Buffer
	err := run([]string{"-log", logPath, "-targets", flag, "-seed", "7", "-v"}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	if got, want := extractHash(t, buf.String()), batchHash(t, ds, targets, 7); got != want {
		t.Errorf("replay hash %s, want batch hash %s\n%s", got, want, buf.String())
	}
	if !strings.Contains(buf.String(), "#1 window") {
		t.Errorf("-v printed no live resolutions:\n%s", buf.String())
	}
}

// TestRunCrashResume is the CLI-level crash drill: a first run stops
// mid-log leaving a checkpoint, a second run resumes from it, and the final
// fingerprint matches an uninterrupted replay and the batch reference.
func TestRunCrashResume(t *testing.T) {
	dir := t.TempDir()
	ds, logPath := writeTestLog(t, dir)
	flag, targets := targetsFlag(ds, 12)
	ckpt := filepath.Join(dir, "state.ckpt")

	var first bytes.Buffer
	err := run([]string{
		"-log", logPath, "-targets", flag, "-seed", "7",
		"-checkpoint", ckpt, "-checkpoint-every", "500",
		"-max-events", "1500", "-finalize=false",
	}, &first)
	if err != nil {
		t.Fatalf("first run: %v\n%s", err, first.String())
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("first run left no checkpoint: %v", err)
	}

	var second bytes.Buffer
	err = run([]string{
		"-log", logPath, "-targets", flag, "-seed", "7",
		"-checkpoint", ckpt, "-checkpoint-every", "500",
	}, &second)
	if err != nil {
		t.Fatalf("second run: %v\n%s", err, second.String())
	}
	if !strings.Contains(second.String(), "resumed from") {
		t.Fatalf("second run did not resume:\n%s", second.String())
	}
	if got, want := extractHash(t, second.String()), batchHash(t, ds, targets, 7); got != want {
		t.Errorf("resumed replay hash %s, want batch hash %s", got, want)
	}
}

// TestRunShardedReplayMatchesBatch extends the CLI golden invariant to the
// sharded router: -shards N replays print the same fingerprint hash as the
// batch SS run, at the degenerate 1-shard case and a genuinely partitioned 4.
func TestRunShardedReplayMatchesBatch(t *testing.T) {
	dir := t.TempDir()
	ds, logPath := writeTestLog(t, dir)
	flag, targets := targetsFlag(ds, 12)
	want := batchHash(t, ds, targets, 7)
	for _, shards := range []string{"1", "4"} {
		var buf bytes.Buffer
		err := run([]string{"-log", logPath, "-targets", flag, "-seed", "7", "-shards", shards}, &buf)
		if err != nil {
			t.Fatalf("run -shards %s: %v\n%s", shards, err, buf.String())
		}
		if got := extractHash(t, buf.String()); got != want {
			t.Errorf("-shards %s replay hash %s, want batch hash %s", shards, got, want)
		}
	}
}

// TestRunShardedCrashResume is the sharded crash drill, covering both
// checkpoint-format transitions: a 3-shard run leaves a v3 image that a
// 2-shard run resumes (resharding restore), and an unsharded run leaves a v2
// image that a 2-shard run upgrades — both finishing at the batch hash.
func TestRunShardedCrashResume(t *testing.T) {
	dir := t.TempDir()
	ds, logPath := writeTestLog(t, dir)
	flag, targets := targetsFlag(ds, 12)
	want := batchHash(t, ds, targets, 7)
	for _, tc := range []struct{ name, firstShards string }{
		{"v3-reshard", "3"},
		{"v2-upgrade", "0"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ckpt := filepath.Join(dir, tc.name+".ckpt")
			var first bytes.Buffer
			err := run([]string{
				"-log", logPath, "-targets", flag, "-seed", "7", "-shards", tc.firstShards,
				"-checkpoint", ckpt, "-checkpoint-every", "500",
				"-max-events", "1500", "-finalize=false",
			}, &first)
			if err != nil {
				t.Fatalf("first run: %v\n%s", err, first.String())
			}
			var second bytes.Buffer
			err = run([]string{
				"-log", logPath, "-targets", flag, "-seed", "7", "-shards", "2",
				"-checkpoint", ckpt, "-checkpoint-every", "500",
			}, &second)
			if err != nil {
				t.Fatalf("second run: %v\n%s", err, second.String())
			}
			if !strings.Contains(second.String(), "resumed from") {
				t.Fatalf("second run did not resume:\n%s", second.String())
			}
			if got := extractHash(t, second.String()); got != want {
				t.Errorf("resumed sharded replay hash %s, want batch hash %s", got, want)
			}
		})
	}
}

// TestRunDefaultTargets covers the pre-scan path: with no -targets the CLI
// matches every EID sighted in the log.
// TestRunSpillBudgetMatchesBatch is the CLI face of the out-of-core
// invariant: a replay squeezed under a tiny -mem-budget evicts sealed
// windows to disk (the spill summary line proves it) yet prints the same
// fingerprint hash as the batch reference — and as the unbudgeted replay.
func TestRunSpillBudgetMatchesBatch(t *testing.T) {
	dir := t.TempDir()
	ds, logPath := writeTestLog(t, dir)
	flag, targets := targetsFlag(ds, 12)
	var buf bytes.Buffer
	err := run([]string{
		"-log", logPath, "-targets", flag, "-seed", "7",
		"-mem-budget", "4096", "-spill-dir", dir,
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	if got, want := extractHash(t, buf.String()), batchHash(t, ds, targets, 7); got != want {
		t.Errorf("budgeted replay hash %s, want batch hash %s\n%s", got, want, buf.String())
	}
	if !strings.Contains(buf.String(), "spill:") {
		t.Errorf("budget forced no spill activity:\n%s", buf.String())
	}
}

// TestRunSpillCrashResume combines both durability layers: checkpoints
// written over evicted state, a resume from one, all under a budget — the
// resumed, budgeted replay still lands on the batch hash.
func TestRunSpillCrashResume(t *testing.T) {
	dir := t.TempDir()
	ds, logPath := writeTestLog(t, dir)
	flag, targets := targetsFlag(ds, 12)
	ckpt := filepath.Join(dir, "state.ckpt")

	var first bytes.Buffer
	err := run([]string{
		"-log", logPath, "-targets", flag, "-seed", "7",
		"-mem-budget", "4096", "-spill-dir", dir,
		"-checkpoint", ckpt, "-checkpoint-every", "500",
		"-max-events", "1500", "-finalize=false",
	}, &first)
	if err != nil {
		t.Fatalf("first run: %v\n%s", err, first.String())
	}
	var second bytes.Buffer
	err = run([]string{
		"-log", logPath, "-targets", flag, "-seed", "7",
		"-mem-budget", "4096", "-spill-dir", dir,
		"-checkpoint", ckpt, "-checkpoint-every", "500",
	}, &second)
	if err != nil {
		t.Fatalf("second run: %v\n%s", err, second.String())
	}
	if !strings.Contains(second.String(), "resumed from") {
		t.Fatalf("second run did not resume:\n%s", second.String())
	}
	if got, want := extractHash(t, second.String()), batchHash(t, ds, targets, 7); got != want {
		t.Errorf("resumed budgeted replay hash %s, want batch hash %s", got, want)
	}
}

func TestRunDefaultTargets(t *testing.T) {
	dir := t.TempDir()
	ds, logPath := writeTestLog(t, dir)
	var buf bytes.Buffer
	if err := run([]string{"-log", logPath, "-seed", "7"}, &buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	if got, want := extractHash(t, buf.String()), batchHash(t, ds, ds.AllEIDs(), 7); got != want {
		t.Errorf("default-target replay hash %s, want batch hash %s", got, want)
	}
}

func TestRunValidation(t *testing.T) {
	dir := t.TempDir()
	if err := run(nil, new(bytes.Buffer)); err == nil {
		t.Error("want error for missing -log")
	}
	if err := run([]string{"-bogus"}, new(bytes.Buffer)); err == nil {
		t.Error("want flag parse error")
	}
	_, logPath := writeTestLog(t, dir)
	if err := run([]string{"-log", logPath, "-mode", "quantum"}, new(bytes.Buffer)); err == nil {
		t.Error("want error for unknown mode")
	}
	garbage := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(garbage, []byte("not a log\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-log", garbage}, new(bytes.Buffer)); err == nil {
		t.Error("want error for malformed log")
	}
}

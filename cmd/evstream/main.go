// Command evstream replays a JSONL observation log (produced by evgen
// -events) through the incremental stream engine: observations fold into
// event-time windows, the watermark closes them, the partition refines
// incrementally, and resolutions stream out the moment an EID's candidate
// set becomes a singleton. With -finalize (the default) the replay ends in
// the batch-equivalent final match, whose fingerprint is byte-identical to
// running batch SS over the same data.
//
// Usage:
//
//	evstream -log obs.jsonl [-targets aa:bb:...,...] [-lateness-ms 250]
//	         [-speed 0] [-seed 1] [-mode serial|parallel] [-workers 0]
//	         [-shards 0] [-shard-workers 0] [-shardd path] [-shard-kill spec]
//	         [-checkpoint state.ckpt] [-checkpoint-every 2000]
//	         [-max-events 0] [-finalize] [-mem-budget 0] [-spill-dir ""] [-v]
//
// With -shards N > 0 the replay runs through the sharded router: N
// concurrent per-cell-range windowers behind a cell-partitioning router,
// producing the same resolutions and the same final fingerprint as the
// unsharded engine (checkpoints are then written in the sharded v3 format;
// both v2 and v3 images restore into any shard count).
//
// With -shard-workers N > 0 the N shards run in separate evshardd worker
// processes over net/rpc (DESIGN.md §15) instead of in-process goroutines:
// same router, same fingerprint, but each windower lives in its own
// process, supervised and redispatched on death. -shardd names the worker
// binary (default: evshardd next to evstream, else on PATH); -shard-kill
// "shard@step,..." SIGKILLs workers on a script, the chaos drill CI runs to
// prove a killed worker's shard recovers bit-identically.
//
// When -checkpoint names an existing file the replay resumes from it,
// skipping the observations the checkpointed engine already ingested — the
// crash-recovery path the stream chaos tests exercise.
package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"evmatching/internal/core"
	"evmatching/internal/ids"
	"evmatching/internal/shardrpc"
	"evmatching/internal/spill"
	"evmatching/internal/stream"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "evstream:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("evstream", flag.ContinueOnError)
	var (
		logPath    = fs.String("log", "", "JSONL observation log from evgen -events (required)")
		targetList = fs.String("targets", "", "comma-separated EIDs to match (default: every EID sighted in the log)")
		latenessMS = fs.Int64("lateness-ms", 250, "allowed lateness in event-time milliseconds")
		speed      = fs.Float64("speed", 0, "replay pacing: event-time speedup factor (0 = as fast as possible)")
		seed       = fs.Int64("seed", 1, "matcher seed")
		modeName   = fs.String("mode", "serial", "finalize execution mode: serial or parallel")
		workers    = fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		shards     = fs.Int("shards", 0, "cell-range ingest shards (0 = unsharded single engine)")
		shardWkrs  = fs.Int("shard-workers", 0, "run N ingest shards in separate evshardd worker processes (mutually exclusive with -shards)")
		sharddPath = fs.String("shardd", "", "evshardd worker binary for -shard-workers (default: next to evstream, else on PATH)")
		shardKill  = fs.String("shard-kill", "", "scripted chaos kills for -shard-workers: comma-separated shard@step entries")
		ckptPath   = fs.String("checkpoint", "", "checkpoint file: resumed from when present, rewritten during replay")
		ckptEvery  = fs.Int64("checkpoint-every", 2000, "observations between checkpoint writes")
		maxEvents  = fs.Int64("max-events", 0, "stop after this log position (0 = whole log)")
		finalize   = fs.Bool("finalize", true, "flush and run the batch-equivalent final match")
		memBudget  = fs.Int64("mem-budget", 0, "bytes of sealed-window and shuffle state kept in memory; past it, state spills to disk (0 = unlimited)")
		spillDir   = fs.String("spill-dir", "", "directory for spill files (default: OS temp dir)")
		verbose    = fs.Bool("v", false, "print every resolution as it is emitted")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *logPath == "" {
		return errors.New("-log is required")
	}
	if *shardWkrs > 0 && *shards > 0 {
		return errors.New("use either -shards or -shard-workers, not both")
	}
	if *shardKill != "" && *shardWkrs == 0 {
		return errors.New("-shard-kill needs -shard-workers")
	}
	var mode core.Mode
	switch *modeName {
	case "serial":
		mode = core.ModeSerial
	case "parallel":
		mode = core.ModeParallel
	default:
		return fmt.Errorf("unknown mode %q", *modeName)
	}

	f, err := os.Open(*logPath)
	if err != nil {
		return err
	}
	hdr, obs, err := stream.ReadLog(f)
	f.Close()
	if err != nil {
		return err
	}

	var targets []ids.EID
	if *targetList != "" {
		for _, s := range strings.Split(*targetList, ",") {
			if s = strings.TrimSpace(s); s != "" {
				targets = append(targets, ids.EID(s))
			}
		}
	} else {
		sighted := make(map[ids.EID]bool)
		for _, o := range obs {
			if o.Kind == stream.KindE {
				sighted[o.EID] = true
			}
		}
		targets = ids.SortedEIDKeys(sighted)
	}
	if len(targets) == 0 {
		return errors.New("no targets: the log has no E observations and -targets is empty")
	}

	cfg := stream.Config{
		Targets:    targets,
		WindowMS:   hdr.WindowMS,
		LatenessMS: *latenessMS,
		Dim:        hdr.Dim,
		Seed:       *seed,
		Mode:       mode,
		Workers:    *workers,
		MemBudget:  *memBudget,
		SpillDir:   *spillDir,
	}

	// With -shard-workers the shards run in supervised evshardd processes:
	// same router and checkpoint formats, different shard hosting. The
	// supervisor closes after the router (defers run LIFO), so in-flight
	// worker calls see the router's stop channels first.
	nshards := *shards
	var sup *shardrpc.Supervisor
	if *shardWkrs > 0 {
		nshards = *shardWkrs
		bin, err := shardrpc.ResolveWorkerBinary(*sharddPath)
		if err != nil {
			return err
		}
		plan, err := shardrpc.ParseKillSpec(*shardKill)
		if err != nil {
			return err
		}
		sup = shardrpc.NewSupervisor(shardrpc.SupervisorConfig{
			Command:  []string{bin},
			KillPlan: plan,
			Stderr:   os.Stderr,
		})
		defer sup.Close()
	}

	// Resume from the checkpoint when one exists; otherwise start fresh. With
	// shards the processor is the sharded router, which restores both v2
	// single-engine and v3 sharded images, redistributing buckets by cell.
	rcfg := stream.RouterConfig{Config: cfg, Shards: nshards}
	if sup != nil {
		rcfg.Runner = sup
	}
	var e stream.Processor
	if *ckptPath != "" {
		cf, err := os.Open(*ckptPath)
		switch {
		case err == nil:
			if nshards > 0 {
				e, err = stream.RestoreRouter(rcfg, cf)
			} else {
				e, err = stream.Restore(cfg, cf)
			}
			cf.Close()
			if err != nil {
				return fmt.Errorf("resume from %s: %w", *ckptPath, err)
			}
			fmt.Fprintf(out, "resumed from %s at observation %d\n", *ckptPath, e.Ingested())
		case errors.Is(err, os.ErrNotExist):
			// First run: nothing to resume.
		default:
			return err
		}
	}
	if e == nil {
		if nshards > 0 {
			e, err = stream.NewRouter(rcfg)
		} else {
			e, err = stream.NewEngine(cfg)
		}
		if err != nil {
			return err
		}
	}
	if r, ok := e.(*stream.Router); ok {
		defer r.Close()
	}

	start := e.Ingested()
	if start > int64(len(obs)) {
		return fmt.Errorf("checkpoint is ahead of the log: %d ingested, log has %d", start, len(obs))
	}
	stop := int64(len(obs))
	if *maxEvents > 0 && *maxEvents < stop {
		stop = *maxEvents
	}

	backlog, ch, cancel := e.Subscribe()
	defer cancel()
	if *verbose {
		for _, r := range backlog {
			printResolution(out, r)
		}
	}

	lastTS := int64(-1)
	for i := start; i < stop; i++ {
		o := obs[i]
		if *speed > 0 && lastTS >= 0 && o.TS > lastTS {
			time.Sleep(time.Duration(float64(o.TS-lastTS) / *speed * float64(time.Millisecond)))
		}
		lastTS = o.TS
		if _, err := e.Ingest(o); err != nil {
			return fmt.Errorf("observation %d: %w", i, err)
		}
		if *verbose {
			drainResolutions(ch, out)
		}
		if *ckptPath != "" && *ckptEvery > 0 && e.Ingested()%*ckptEvery == 0 {
			if err := writeCheckpoint(e, *ckptPath); err != nil {
				return err
			}
		}
	}
	if *ckptPath != "" && stop > start {
		if err := writeCheckpoint(e, *ckptPath); err != nil {
			return err
		}
	}

	// One greppable line per run for the cluster-smoke CI job: did workers
	// spawn, did the scripted kills fire, did redispatch recover them.
	printWorkerStats := func() {
		if sup == nil {
			return
		}
		st := sup.Stats()
		var red int64
		if r, ok := e.(*stream.Router); ok {
			red = r.Stats().SupervisorRedispatches
		}
		fmt.Fprintf(out, "shard workers: spawned=%d kills=%d redispatches=%d retries=%d fallbacks=%d\n",
			st.Spawned, st.Kills, red, st.Retries, st.Fallbacks)
	}

	if !*finalize {
		fmt.Fprintf(out, "replayed %d/%d observations (%d late-dropped), %d resolutions emitted\n",
			e.Ingested(), len(obs), e.LateDropped(), len(e.Resolutions()))
		printWorkerStats()
		return nil
	}
	rep, err := e.Finalize(context.Background())
	if err != nil {
		return err
	}
	if *verbose {
		drainResolutions(ch, out)
		for _, t := range rep.Targets {
			res := rep.Results[t]
			fmt.Fprintf(out, "final %-17s -> %-8s p=%.3f vote=%.2f\n",
				t, res.VID, res.Probability, res.MajorityFrac)
		}
	}
	fp := rep.Fingerprint()
	sum := sha256.Sum256([]byte(fp))
	fmt.Fprintf(out, "replayed %d/%d observations (%d late-dropped), %d resolutions emitted\n",
		e.Ingested(), len(obs), e.LateDropped(), len(e.Resolutions()))
	fmt.Fprintf(out, "finalized %d targets, matched %d, fingerprint sha256=%s\n",
		len(rep.Targets), rep.Matched(), hex.EncodeToString(sum[:]))
	if s := e.SpillStats(); s.Spilled() {
		fmt.Fprintf(out, "spill: %d bytes spilled, %d evictions, %d reloads, %d runs written, %d runs merged\n",
			s.BytesSpilled, s.Evictions, s.Reloads, s.RunsWritten, s.RunsMerged)
	}
	printWorkerStats()
	return nil
}

// printResolution writes one early-emission match line.
func printResolution(w io.Writer, r stream.Resolution) {
	fmt.Fprintf(w, "#%d window %d: %s -> %s p=%.3f vote=%.2f\n",
		r.Seq, r.Window, r.EID, r.VID, r.Probability, r.MajorityFrac)
}

// drainResolutions prints everything currently buffered without blocking.
func drainResolutions(ch <-chan stream.Resolution, w io.Writer) {
	for {
		select {
		case r, ok := <-ch:
			if !ok {
				return
			}
			printResolution(w, r)
		default:
			return
		}
	}
}

// writeCheckpoint writes the processor state durably and atomically: the
// temp file is fsynced before the rename and the parent directory after,
// so a crash at any moment — including right after the rename — leaves
// either the previous or the new checkpoint complete on disk. (The earlier
// close-then-rename sequence lost the file entirely on a post-rename crash
// before the directory entry reached disk; spill's crash drill pins the
// difference.)
func writeCheckpoint(e stream.Processor, path string) error {
	return spill.WriteFileAtomic(spill.OS{}, path, e.Checkpoint)
}

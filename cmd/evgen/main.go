// Command evgen generates a synthetic EV dataset file: persons with WiFi-MAC
// EIDs and visual appearances moving by random waypoint, discretized into
// EV-Scenarios.
//
// With -events it additionally (or instead) flattens the world into the
// time-ordered JSONL observation log that cmd/evstream replays: one record
// per EID sighting and per detection, timestamped inside its window.
//
// Usage:
//
//	evgen -out world.gob [-preset sparse-city|dense-core]
//	      [-persons 1000] [-density 60] [-windows 64]
//	      [-seed 1] [-layout grid|hex] [-practical] [-eid-miss 0] [-vid-miss 0]
//	      [-events obs.jsonl] [-window-ms 1000]
//
// -preset starts from a named scale preset; explicit shape flags given
// alongside it override the preset's values.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"evmatching"
	"evmatching/internal/stream"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "evgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("evgen", flag.ContinueOnError)
	var (
		out       = fs.String("out", "", "output dataset file")
		events    = fs.String("events", "", "output JSONL observation log for stream replay")
		windowMS  = fs.Int64("window-ms", 1000, "event-log window length in milliseconds")
		preset    = fs.String("preset", "", "scale preset to start from: "+strings.Join(evmatching.ScalePresetNames(), " or "))
		persons   = fs.Int("persons", 1000, "number of human objects")
		density   = fs.Float64("density", 60, "average persons per cell")
		windows   = fs.Int("windows", 64, "number of scenario time windows")
		seed      = fs.Int64("seed", 1, "generation seed")
		layout    = fs.String("layout", "grid", "cell layout: grid or hex")
		practical = fs.Bool("practical", false, "practical setting: drift, vague zones, multi-tick windows")
		eidMiss   = fs.Float64("eid-miss", 0, "fraction of persons without a device")
		vidMiss   = fs.Float64("vid-miss", 0, "per-detection miss probability")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" && *events == "" {
		return errors.New("at least one of -out and -events is required")
	}
	cfg, err := baseConfig(*preset)
	if err != nil {
		return err
	}
	set := setFlags(fs)
	if set["persons"] {
		cfg.NumPersons = *persons
	}
	if set["density"] {
		cfg.Density = *density
	}
	if set["windows"] {
		cfg.NumWindows = *windows
	}
	cfg.Seed = *seed
	switch *layout {
	case "grid":
		cfg.Layout = evmatching.LayoutGrid
	case "hex":
		cfg.Layout = evmatching.LayoutHex
	default:
		return fmt.Errorf("unknown layout %q", *layout)
	}
	if *practical {
		cfg = cfg.Practical()
	}
	if set["eid-miss"] {
		cfg.EIDMissingRate = *eidMiss
	}
	if set["vid-miss"] {
		cfg.VIDMissingRate = *vidMiss
	}

	ds, err := evmatching.Generate(cfg)
	if err != nil {
		return err
	}
	if *out != "" {
		if err := ds.SaveFile(*out); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d persons, %d EIDs, %d cells, %d scenarios\n",
			*out, len(ds.Persons), len(ds.AllEIDs()), ds.Layout.NumCells(), ds.Store.Len())
	}
	if *events != "" {
		if err := writeEvents(ds, *events, *windowMS, *seed); err != nil {
			return err
		}
	}
	return nil
}

// baseConfig resolves the starting configuration: the named scale preset if
// -preset was given, the paper defaults otherwise.
func baseConfig(preset string) (evmatching.DatasetConfig, error) {
	if preset == "" {
		return evmatching.DefaultDatasetConfig(), nil
	}
	return evmatching.ScaleDatasetConfig(preset)
}

// setFlags reports which flags were given explicitly on the command line, so
// shape flags override a preset only when the user actually typed them.
func setFlags(fs *flag.FlagSet) map[string]bool {
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	return set
}

// writeEvents streams the dataset's observation log to path one window at a
// time — at scale-preset sizes the flattened log would dwarf the dataset
// itself, so it is never materialized.
func writeEvents(ds *evmatching.Dataset, path string, windowMS, seed int64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	n, err := stream.WriteEventsLog(f, ds, windowMS, seed)
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d observations over %d windows (window %d ms, dim %d)\n",
		path, n, ds.Config.NumWindows, windowMS, ds.Config.DescriptorDim())
	return nil
}

// Command evgen generates a synthetic EV dataset file: persons with WiFi-MAC
// EIDs and visual appearances moving by random waypoint, discretized into
// EV-Scenarios.
//
// With -events it additionally (or instead) flattens the world into the
// time-ordered JSONL observation log that cmd/evstream replays: one record
// per EID sighting and per detection, timestamped inside its window.
//
// Usage:
//
//	evgen -out world.gob [-persons 1000] [-density 60] [-windows 64]
//	      [-seed 1] [-layout grid|hex] [-practical] [-eid-miss 0] [-vid-miss 0]
//	      [-events obs.jsonl] [-window-ms 1000]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"evmatching"
	"evmatching/internal/stream"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "evgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("evgen", flag.ContinueOnError)
	var (
		out       = fs.String("out", "", "output dataset file")
		events    = fs.String("events", "", "output JSONL observation log for stream replay")
		windowMS  = fs.Int64("window-ms", 1000, "event-log window length in milliseconds")
		persons   = fs.Int("persons", 1000, "number of human objects")
		density   = fs.Float64("density", 60, "average persons per cell")
		windows   = fs.Int("windows", 64, "number of scenario time windows")
		seed      = fs.Int64("seed", 1, "generation seed")
		layout    = fs.String("layout", "grid", "cell layout: grid or hex")
		practical = fs.Bool("practical", false, "practical setting: drift, vague zones, multi-tick windows")
		eidMiss   = fs.Float64("eid-miss", 0, "fraction of persons without a device")
		vidMiss   = fs.Float64("vid-miss", 0, "per-detection miss probability")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" && *events == "" {
		return errors.New("at least one of -out and -events is required")
	}
	cfg := evmatching.DefaultDatasetConfig()
	cfg.NumPersons = *persons
	cfg.Density = *density
	cfg.NumWindows = *windows
	cfg.Seed = *seed
	switch *layout {
	case "grid":
		cfg.Layout = evmatching.LayoutGrid
	case "hex":
		cfg.Layout = evmatching.LayoutHex
	default:
		return fmt.Errorf("unknown layout %q", *layout)
	}
	if *practical {
		cfg = cfg.Practical()
	}
	cfg.EIDMissingRate = *eidMiss
	cfg.VIDMissingRate = *vidMiss

	ds, err := evmatching.Generate(cfg)
	if err != nil {
		return err
	}
	if *out != "" {
		if err := ds.SaveFile(*out); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d persons, %d EIDs, %d cells, %d scenarios\n",
			*out, len(ds.Persons), len(ds.AllEIDs()), ds.Layout.NumCells(), ds.Store.Len())
	}
	if *events != "" {
		if err := writeEvents(ds, *events, *windowMS, *seed); err != nil {
			return err
		}
	}
	return nil
}

// writeEvents flattens the dataset into the stream observation log.
func writeEvents(ds *evmatching.Dataset, path string, windowMS, seed int64) error {
	hdr, obs, err := stream.EventsFromDataset(ds, windowMS, seed)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := stream.WriteLog(f, hdr, obs); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d observations over %d windows (window %d ms, dim %d)\n",
		path, len(obs), ds.Config.NumWindows, hdr.WindowMS, hdr.Dim)
	return nil
}

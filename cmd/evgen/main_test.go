package main

import (
	"path/filepath"
	"testing"

	"evmatching"
)

func TestRunGeneratesLoadableDataset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "w.gob")
	err := run([]string{
		"-out", out,
		"-persons", "50",
		"-density", "10",
		"-windows", "8",
		"-seed", "3",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	ds, err := evmatching.LoadDataset(out)
	if err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	if len(ds.Persons) != 50 {
		t.Errorf("persons = %d", len(ds.Persons))
	}
	if ds.Store.Len() == 0 {
		t.Error("no scenarios")
	}
}

func TestRunPracticalAndHex(t *testing.T) {
	out := filepath.Join(t.TempDir(), "w.gob")
	err := run([]string{
		"-out", out,
		"-persons", "40",
		"-density", "10",
		"-windows", "6",
		"-layout", "hex",
		"-practical",
		"-eid-miss", "0.2",
		"-vid-miss", "0.05",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	ds, err := evmatching.LoadDataset(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.AllEIDs()) >= 40 {
		t.Errorf("EIDs = %d, want < 40 with missing rate", len(ds.AllEIDs()))
	}
}

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("want error for missing -out")
	}
	if err := run([]string{"-out", "x", "-layout", "triangle"}); err == nil {
		t.Error("want error for unknown layout")
	}
	if err := run([]string{"-out", filepath.Join(t.TempDir(), "w.gob"), "-persons", "0"}); err == nil {
		t.Error("want error for invalid config")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("want flag parse error")
	}
}

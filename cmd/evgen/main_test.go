package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"evmatching"
	"evmatching/internal/stream"
)

func TestRunGeneratesLoadableDataset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "w.gob")
	err := run([]string{
		"-out", out,
		"-persons", "50",
		"-density", "10",
		"-windows", "8",
		"-seed", "3",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	ds, err := evmatching.LoadDataset(out)
	if err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	if len(ds.Persons) != 50 {
		t.Errorf("persons = %d", len(ds.Persons))
	}
	if ds.Store.Len() == 0 {
		t.Error("no scenarios")
	}
}

func TestRunPracticalAndHex(t *testing.T) {
	out := filepath.Join(t.TempDir(), "w.gob")
	err := run([]string{
		"-out", out,
		"-persons", "40",
		"-density", "10",
		"-windows", "6",
		"-layout", "hex",
		"-practical",
		"-eid-miss", "0.2",
		"-vid-miss", "0.05",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	ds, err := evmatching.LoadDataset(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.AllEIDs()) >= 40 {
		t.Errorf("EIDs = %d, want < 40 with missing rate", len(ds.AllEIDs()))
	}
}

// TestRunEventsRoundTrip pins the -events satellite: the written JSONL log
// must decode back to exactly the flattening of the equivalently-generated
// dataset, so evstream replays see the same observations evgen computed.
func TestRunEventsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "w.gob")
	events := filepath.Join(dir, "obs.jsonl")
	err := run([]string{
		"-out", out,
		"-events", events,
		"-window-ms", "500",
		"-persons", "40",
		"-density", "10",
		"-windows", "6",
		"-seed", "3",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(events)
	if err != nil {
		t.Fatalf("open events: %v", err)
	}
	defer f.Close()
	hdr, obs, err := stream.ReadLog(f)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	ds, err := evmatching.LoadDataset(out)
	if err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	wantHdr, wantObs, err := stream.EventsFromDataset(ds, 500, 3)
	if err != nil {
		t.Fatalf("EventsFromDataset: %v", err)
	}
	if hdr != wantHdr {
		t.Errorf("header = %+v, want %+v", hdr, wantHdr)
	}
	if len(obs) != len(wantObs) {
		t.Fatalf("decoded %d observations, want %d", len(obs), len(wantObs))
	}
	for i := range obs {
		if !reflect.DeepEqual(obs[i], wantObs[i]) {
			t.Fatalf("observation %d:\ngot  %+v\nwant %+v", i, obs[i], wantObs[i])
		}
	}
}

// TestRunEventsOnly checks that -events without -out is a valid invocation.
func TestRunEventsOnly(t *testing.T) {
	events := filepath.Join(t.TempDir(), "obs.jsonl")
	if err := run([]string{"-events", events, "-persons", "30", "-density", "10", "-windows", "4"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(events)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	if _, obs, err := stream.ReadLog(f); err != nil {
		t.Fatalf("ReadLog: %v", err)
	} else if len(obs) == 0 {
		t.Error("events-only run produced an empty log")
	}
}

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("want error for missing -out")
	}
	if err := run([]string{"-out", "x", "-layout", "triangle"}); err == nil {
		t.Error("want error for unknown layout")
	}
	if err := run([]string{"-out", filepath.Join(t.TempDir(), "w.gob"), "-persons", "0"}); err == nil {
		t.Error("want error for invalid config")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("want flag parse error")
	}
}

// TestRunPresetRoundTrip pins the -preset satellite: a preset name selects
// the published scale configuration, explicit shape flags override it, and
// the result is the same world the library API generates — so benchmark and
// CLI runs agree on what "sparse-city" means. The preset is shrunk via
// -persons to stay test-sized.
func TestRunPresetRoundTrip(t *testing.T) {
	out := filepath.Join(t.TempDir(), "w.gob")
	err := run([]string{
		"-out", out,
		"-preset", "sparse-city",
		"-persons", "60",
		"-seed", "7",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	ds, err := evmatching.LoadDataset(out)
	if err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	want, err := evmatching.ScaleDatasetConfig("sparse-city")
	if err != nil {
		t.Fatalf("ScaleDatasetConfig: %v", err)
	}
	want.NumPersons = 60
	want.Seed = 7
	if !reflect.DeepEqual(ds.Config, want) {
		t.Errorf("config = %+v, want preset with overrides %+v", ds.Config, want)
	}
	if len(ds.Persons) != 60 {
		t.Errorf("persons = %d, want the explicit -persons override", len(ds.Persons))
	}
}

// TestRunPresetUnknown rejects a bogus preset name with the valid choices.
func TestRunPresetUnknown(t *testing.T) {
	err := run([]string{"-out", "x", "-preset", "megacity"})
	if err == nil {
		t.Fatal("want error for unknown preset")
	}
	for _, name := range evmatching.ScalePresetNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list preset %q", err, name)
		}
	}
}

// Command evmatch runs EV-Matching over a dataset file produced by evgen:
// it matches the requested EIDs (a sample, an explicit list, or the
// universal set) to their VIDs and reports accuracy and cost metrics.
//
// Usage:
//
//	evmatch -data world.gob [-n 100 | -eids aa:bb:...,... | -all]
//	        [-algorithm ss|edp] [-mode serial|parallel] [-workers 0] [-seed 1]
//	        [-no-blocking] [-mem-budget 0] [-spill-dir ""]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"evmatching"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "evmatch:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("evmatch", flag.ContinueOnError)
	var (
		data      = fs.String("data", "", "dataset file from evgen (required)")
		n         = fs.Int("n", 0, "match a random sample of n EIDs")
		eidList   = fs.String("eids", "", "comma-separated explicit EIDs to match")
		all       = fs.Bool("all", false, "universal matching: label every EID")
		algoName  = fs.String("algorithm", "ss", "matching algorithm: ss or edp")
		modeName  = fs.String("mode", "serial", "execution mode: serial or parallel")
		workers   = fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		seed      = fs.Int64("seed", 1, "matcher seed")
		verbose   = fs.Bool("v", false, "print every matched pair")
		jsonOut   = fs.Bool("json", false, "emit the full report as JSON instead of text")
		noBlock   = fs.Bool("no-blocking", false, "disable the spatiotemporal blocking index (exhaustive window scans; A/B cross-check)")
		explain   = fs.String("explain", "", "trace the matching decision for one EID and exit")
		memBudget = fs.Int64("mem-budget", 0, "bytes of in-memory shuffle state in parallel mode; past it, buckets spill to sorted disk runs (0 = unlimited)")
		spillDir  = fs.String("spill-dir", "", "directory for spill runs (default: OS temp dir)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return errors.New("-data is required")
	}
	ds, err := evmatching.LoadDataset(*data)
	if err != nil {
		return err
	}

	if *explain != "" {
		m, err := evmatching.NewMatcher(ds, evmatching.Options{Seed: *seed, Workers: *workers})
		if err != nil {
			return err
		}
		return m.Explain(context.Background(), evmatching.EID(*explain), os.Stdout)
	}

	var targets []evmatching.EID
	switch {
	case *all:
		targets = ds.AllEIDs()
	case *eidList != "":
		for _, s := range strings.Split(*eidList, ",") {
			if s = strings.TrimSpace(s); s != "" {
				targets = append(targets, evmatching.EID(s))
			}
		}
	case *n > 0:
		targets = ds.SampleEIDs(*n, rand.New(rand.NewSource(*seed)))
	default:
		return errors.New("one of -n, -eids, or -all is required")
	}

	opts := evmatching.Options{
		Seed: *seed, Workers: *workers, DisableBlocking: *noBlock,
		MemBudget: *memBudget, SpillDir: *spillDir,
	}
	switch *algoName {
	case "ss":
		opts.Algorithm = evmatching.AlgorithmSS
	case "edp":
		opts.Algorithm = evmatching.AlgorithmEDP
	default:
		return fmt.Errorf("unknown algorithm %q", *algoName)
	}
	switch *modeName {
	case "serial":
		opts.Mode = evmatching.ModeSerial
	case "parallel":
		opts.Mode = evmatching.ModeParallel
	default:
		return fmt.Errorf("unknown mode %q", *modeName)
	}

	rep, err := evmatching.Match(context.Background(), ds, opts, targets)
	if err != nil {
		return err
	}
	if *jsonOut {
		return emitJSON(os.Stdout, ds.TruthVID, rep)
	}
	if *verbose {
		sorted := append([]evmatching.EID(nil), rep.Targets...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, e := range sorted {
			res := rep.Results[e]
			mark := " "
			if truth := ds.TruthVID(e); truth != evmatching.NoVID && truth == res.VID {
				mark = "*"
			}
			fmt.Printf("%s %-17s -> %-8s p=%.3f vote=%.2f\n", mark, e, res.VID, res.Probability, res.MajorityFrac)
		}
	}
	fmt.Printf("algorithm=%s mode=%s targets=%d matched=%d accuracy=%.2f%%\n",
		rep.Algorithm, rep.Mode, len(rep.Targets), rep.Matched(),
		rep.Accuracy(ds.TruthVID)*100)
	fmt.Printf("selected scenarios=%d (%.2f per EID)  E=%v V=%v total=%v refine=%d\n",
		rep.SelectedScenarios, rep.AvgScenariosPerEID(),
		rep.ETime, rep.VTime, rep.TotalTime(), rep.RefineRounds)
	fmt.Printf("blocking candidates=%d pruned=%d (%.1f%% pruned)\n",
		rep.BlockCandidates, rep.BlockPruned, rep.BlockPruneRatio()*100)
	if rep.Spill.Spilled() {
		fmt.Printf("spill bytes=%d runs written=%d merged=%d reloads=%d evictions=%d\n",
			rep.Spill.BytesSpilled, rep.Spill.RunsWritten, rep.Spill.RunsMerged,
			rep.Spill.Reloads, rep.Spill.Evictions)
	}
	return nil
}

// jsonReport is the machine-readable output of -json. Stage times are
// float64 milliseconds: sub-millisecond runs (common at quick scale) used to
// truncate to 0 under Duration.Milliseconds.
type jsonReport struct {
	Algorithm         string      `json:"algorithm"`
	Mode              string      `json:"mode"`
	Targets           int         `json:"targets"`
	Accuracy          float64     `json:"accuracy"`
	SelectedScenarios int         `json:"selectedScenarios"`
	PerEIDAvg         float64     `json:"perEIDAvg"`
	ETimeMillis       float64     `json:"eTimeMillis"`
	VTimeMillis       float64     `json:"vTimeMillis"`
	RefineRounds      int         `json:"refineRounds"`
	BlockCandidates   int64       `json:"blockCandidates"`
	BlockPruned       int64       `json:"blockPruned"`
	BlockPruneRatio   float64     `json:"blockPruneRatio"`
	SpillBytes        int64       `json:"spillBytes,omitempty"`
	SpillRunsWritten  int64       `json:"spillRunsWritten,omitempty"`
	SpillRunsMerged   int64       `json:"spillRunsMerged,omitempty"`
	SpillReloads      int64       `json:"spillReloads,omitempty"`
	SpillEvictions    int64       `json:"spillEvictions,omitempty"`
	Matches           []jsonMatch `json:"matches"`
}

// jsonMatch carries one EID's outcome. RunnerUp and Margin appear only when
// a second candidate contested the vote: a lone candidate's margin is +Inf,
// which encoding/json cannot represent, so both fields are omitted instead.
type jsonMatch struct {
	EID          string   `json:"eid"`
	VID          string   `json:"vid"`
	Probability  float64  `json:"probability"`
	MajorityFrac float64  `json:"majorityFrac"`
	Acceptable   bool     `json:"acceptable"`
	RunnerUp     string   `json:"runnerUp,omitempty"`
	Margin       *float64 `json:"margin,omitempty"`
	Correct      *bool    `json:"correct,omitempty"`
}

// millis converts a stage duration to float64 milliseconds.
func millis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// emitJSON writes the report for downstream tooling; ground-truth verdicts
// are attached for every EID truth knows.
func emitJSON(w io.Writer, truth func(evmatching.EID) evmatching.VID, rep *evmatching.Report) error {
	out := jsonReport{
		Algorithm:         rep.Algorithm.String(),
		Mode:              rep.Mode.String(),
		Targets:           len(rep.Targets),
		Accuracy:          rep.Accuracy(truth),
		SelectedScenarios: rep.SelectedScenarios,
		PerEIDAvg:         rep.AvgScenariosPerEID(),
		ETimeMillis:       millis(rep.ETime),
		VTimeMillis:       millis(rep.VTime),
		RefineRounds:      rep.RefineRounds,
		BlockCandidates:   rep.BlockCandidates,
		BlockPruned:       rep.BlockPruned,
		BlockPruneRatio:   rep.BlockPruneRatio(),
		SpillBytes:        rep.Spill.BytesSpilled,
		SpillRunsWritten:  rep.Spill.RunsWritten,
		SpillRunsMerged:   rep.Spill.RunsMerged,
		SpillReloads:      rep.Spill.Reloads,
		SpillEvictions:    rep.Spill.Evictions,
		Matches:           make([]jsonMatch, 0, len(rep.Targets)),
	}
	for _, e := range rep.Targets {
		res := rep.Results[e]
		m := jsonMatch{
			EID:          string(e),
			VID:          string(res.VID),
			Probability:  res.Probability,
			MajorityFrac: res.MajorityFrac,
			Acceptable:   res.Acceptable,
			RunnerUp:     string(res.RunnerUp),
		}
		if !math.IsInf(res.Margin, 0) && !math.IsNaN(res.Margin) {
			margin := res.Margin
			m.Margin = &margin
		}
		if want := truth(e); want != evmatching.NoVID {
			correct := want == res.VID
			m.Correct = &correct
		}
		out.Matches = append(out.Matches, m)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

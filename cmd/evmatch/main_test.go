package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"evmatching"
)

// writeDataset generates a small dataset file for the tests.
func writeDataset(t *testing.T) string {
	t.Helper()
	cfg := evmatching.DefaultDatasetConfig()
	cfg.NumPersons = 50
	cfg.Density = 10
	cfg.NumWindows = 10
	ds, err := evmatching.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "w.gob")
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSampleMatch(t *testing.T) {
	path := writeDataset(t)
	if err := run([]string{"-data", path, "-n", "10"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunAllUniversalVerbose(t *testing.T) {
	path := writeDataset(t)
	if err := run([]string{"-data", path, "-all", "-v"}); err != nil {
		t.Fatalf("run -all: %v", err)
	}
}

func TestRunExplicitEIDsParallelEDP(t *testing.T) {
	path := writeDataset(t)
	ds, err := evmatching.LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	eids := ds.AllEIDs()
	list := string(eids[0]) + "," + string(eids[1])
	if err := run([]string{
		"-data", path, "-eids", list,
		"-algorithm", "edp", "-mode", "parallel", "-workers", "2",
	}); err != nil {
		t.Fatalf("run -eids: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	path := writeDataset(t)
	if err := run(nil); err == nil {
		t.Error("want error for missing -data")
	}
	if err := run([]string{"-data", path}); err == nil {
		t.Error("want error for missing target selection")
	}
	if err := run([]string{"-data", path, "-n", "5", "-algorithm", "magic"}); err == nil {
		t.Error("want error for unknown algorithm")
	}
	if err := run([]string{"-data", path, "-n", "5", "-mode", "warp"}); err == nil {
		t.Error("want error for unknown mode")
	}
	if err := run([]string{"-data", filepath.Join(t.TempDir(), "missing.gob"), "-n", "5"}); err == nil {
		t.Error("want error for missing dataset file")
	}
}

func TestRunJSONOutput(t *testing.T) {
	path := writeDataset(t)
	// Capture stdout.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run([]string{"-data", path, "-n", "5", "-json"})
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatalf("run: %v", runErr)
	}
	var out struct {
		Algorithm string `json:"algorithm"`
		Targets   int    `json:"targets"`
		Matches   []struct {
			EID     string `json:"eid"`
			Correct *bool  `json:"correct"`
		} `json:"matches"`
	}
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Algorithm != "SS" || out.Targets != 5 || len(out.Matches) != 5 {
		t.Errorf("json report = %+v", out)
	}
	for _, m := range out.Matches {
		if m.Correct == nil {
			t.Errorf("match %s missing truth verdict", m.EID)
		}
	}
}

func TestRunExplain(t *testing.T) {
	path := writeDataset(t)
	ds, err := evmatching.LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-data", path, "-explain", string(ds.AllEIDs()[0])}); err != nil {
		t.Fatalf("run -explain: %v", err)
	}
}

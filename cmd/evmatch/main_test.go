package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"evmatching"
)

// writeDataset generates a small dataset file for the tests.
func writeDataset(t *testing.T) string {
	t.Helper()
	cfg := evmatching.DefaultDatasetConfig()
	cfg.NumPersons = 50
	cfg.Density = 10
	cfg.NumWindows = 10
	ds, err := evmatching.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "w.gob")
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSampleMatch(t *testing.T) {
	path := writeDataset(t)
	if err := run([]string{"-data", path, "-n", "10"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunAllUniversalVerbose(t *testing.T) {
	path := writeDataset(t)
	if err := run([]string{"-data", path, "-all", "-v"}); err != nil {
		t.Fatalf("run -all: %v", err)
	}
}

func TestRunExplicitEIDsParallelEDP(t *testing.T) {
	path := writeDataset(t)
	ds, err := evmatching.LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	eids := ds.AllEIDs()
	list := string(eids[0]) + "," + string(eids[1])
	if err := run([]string{
		"-data", path, "-eids", list,
		"-algorithm", "edp", "-mode", "parallel", "-workers", "2",
	}); err != nil {
		t.Fatalf("run -eids: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	path := writeDataset(t)
	if err := run(nil); err == nil {
		t.Error("want error for missing -data")
	}
	if err := run([]string{"-data", path}); err == nil {
		t.Error("want error for missing target selection")
	}
	if err := run([]string{"-data", path, "-n", "5", "-algorithm", "magic"}); err == nil {
		t.Error("want error for unknown algorithm")
	}
	if err := run([]string{"-data", path, "-n", "5", "-mode", "warp"}); err == nil {
		t.Error("want error for unknown mode")
	}
	if err := run([]string{"-data", filepath.Join(t.TempDir(), "missing.gob"), "-n", "5"}); err == nil {
		t.Error("want error for missing dataset file")
	}
}

func TestRunJSONOutput(t *testing.T) {
	path := writeDataset(t)
	// Capture stdout.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run([]string{"-data", path, "-n", "5", "-json"})
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatalf("run: %v", runErr)
	}
	var out struct {
		Algorithm string `json:"algorithm"`
		Targets   int    `json:"targets"`
		Matches   []struct {
			EID     string `json:"eid"`
			Correct *bool  `json:"correct"`
		} `json:"matches"`
	}
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Algorithm != "SS" || out.Targets != 5 || len(out.Matches) != 5 {
		t.Errorf("json report = %+v", out)
	}
	for _, m := range out.Matches {
		if m.Correct == nil {
			t.Errorf("match %s missing truth verdict", m.EID)
		}
	}
}

func TestRunExplain(t *testing.T) {
	path := writeDataset(t)
	ds, err := evmatching.LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-data", path, "-explain", string(ds.AllEIDs()[0])}); err != nil {
		t.Fatalf("run -explain: %v", err)
	}
}

// TestEmitJSONGolden pins the -json byte output on a hand-built report:
// float64 millisecond stage times (previously truncated to whole ms), the
// runner-up and margin fields (previously dropped), a lone candidate whose
// infinite margin must be omitted rather than break the encoder, and a
// target without ground truth carrying no verdict.
func TestEmitJSONGolden(t *testing.T) {
	rep := &evmatching.Report{
		Algorithm: evmatching.AlgorithmSS,
		Mode:      evmatching.ModeParallel,
		Targets:   []evmatching.EID{"aa:aa", "bb:bb", "cc:cc"},
		Results: map[evmatching.EID]evmatching.MatchResult{
			"aa:aa": {VID: "V00001", Probability: 0.875, MajorityFrac: 1,
				Acceptable: true, RunnerUp: "V00002", Margin: 2.5},
			"bb:bb": {VID: "V00003", Probability: 0.5, MajorityFrac: 0.75,
				Acceptable: true, Margin: math.Inf(1)},
			"cc:cc": {VID: "V00004", Probability: 0.25, MajorityFrac: 0.6,
				RunnerUp: "V00005", Margin: 1.25},
		},
		PerEID:            map[evmatching.EID]int{"aa:aa": 3, "bb:bb": 2, "cc:cc": 3},
		SelectedScenarios: 6,
		ETime:             1500 * time.Microsecond,
		VTime:             2250 * time.Microsecond,
		RefineRounds:      1,
		BlockCandidates:   12,
		BlockPruned:       36,
	}
	truth := func(e evmatching.EID) evmatching.VID {
		switch e {
		case "aa:aa":
			return "V00001" // matched correctly
		case "cc:cc":
			return "V00009" // matched incorrectly
		}
		return evmatching.NoVID // bb:bb has no ground truth
	}
	var buf bytes.Buffer
	if err := emitJSON(&buf, truth, rep); err != nil {
		t.Fatal(err)
	}
	const want = `{
  "algorithm": "SS",
  "mode": "parallel",
  "targets": 3,
  "accuracy": 0.5,
  "selectedScenarios": 6,
  "perEIDAvg": 2.6666666666666665,
  "eTimeMillis": 1.5,
  "vTimeMillis": 2.25,
  "refineRounds": 1,
  "blockCandidates": 12,
  "blockPruned": 36,
  "blockPruneRatio": 0.75,
  "matches": [
    {
      "eid": "aa:aa",
      "vid": "V00001",
      "probability": 0.875,
      "majorityFrac": 1,
      "acceptable": true,
      "runnerUp": "V00002",
      "margin": 2.5,
      "correct": true
    },
    {
      "eid": "bb:bb",
      "vid": "V00003",
      "probability": 0.5,
      "majorityFrac": 0.75,
      "acceptable": true
    },
    {
      "eid": "cc:cc",
      "vid": "V00004",
      "probability": 0.25,
      "majorityFrac": 0.6,
      "acceptable": false,
      "runnerUp": "V00005",
      "margin": 1.25,
      "correct": false
    }
  ]
}
`
	if got := buf.String(); got != want {
		t.Errorf("emitJSON output mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

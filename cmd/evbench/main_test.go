package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunQuickMarkdownToFile(t *testing.T) {
	if testing.Short() {
		t.Skip("quick sweep skipped in -short mode")
	}
	out := filepath.Join(t.TempDir(), "results.md")
	// Silence the duplicated stdout stream.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()

	if err := run([]string{"-quick", "-format", "markdown", "-out", out}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{"**Fig 5", "**Table I", "**Fig 11", "| --- |"} {
		if !strings.Contains(text, want) {
			t.Errorf("markdown output missing %q", want)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-format", "yaml"}); err == nil {
		t.Error("want error for unknown format")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("want flag parse error")
	}
	if err := run([]string{"-quick", "-out", filepath.Join(t.TempDir(), "no", "such", "dir", "x")}); err == nil {
		t.Error("want error for uncreatable output file")
	}
}

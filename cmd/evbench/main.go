// Command evbench regenerates every table and figure of the paper's
// evaluation section (§VI) and, optionally, the ablation studies.
//
// Usage:
//
//	evbench [-quick] [-ablations] [-out results.txt] [-progress]
//	evbench -json BENCH_baseline.json
//
// The default full-scale run mirrors the paper's setup (1000 human objects);
// -quick runs the same sweeps on a 200-person world in seconds. -json runs
// the machine-readable benchmark suite instead of the figure sweeps and
// writes time/op, allocs/op, and the paper-shape metrics to the given file —
// the format BENCH_baseline.json is committed in. -cpuprofile/-memprofile
// capture pprof profiles of whichever mode runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"evmatching"
	"evmatching/internal/benchsuite"
	"evmatching/internal/experiments"
)

func main() {
	// The remote-shard suite benchmarks spawn this binary as their evshardd
	// worker; a re-exec marked by the sentinel runs the worker loop instead.
	if benchsuite.IsWorkerReexec() {
		os.Exit(benchsuite.WorkerExitCode())
	}
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "evbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("evbench", flag.ContinueOnError)
	var (
		quick     = fs.Bool("quick", false, "run the shrunken quick-scale sweeps")
		ablations = fs.Bool("ablations", false, "also run the ablation studies")
		outPath   = fs.String("out", "", "write results to this file as well as stdout")
		progress  = fs.Bool("progress", false, "log per-run progress to stderr")
		format    = fs.String("format", "text", "output format: text, markdown, or csv")
		plots     = fs.Bool("plots", false, "render ASCII line charts after each figure (text format)")
		runs      = fs.Int("runs", 1, "average each measurement over this many matcher seeds")
		jsonPath  = fs.String("json", "", "run the machine-readable benchmark suite and write it to this file")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = fs.String("memprofile", "", "write a heap profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "text" && *format != "markdown" && *format != "csv" {
		return fmt.Errorf("unknown format %q", *format)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("start cpu profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "evbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "evbench: memprofile:", err)
			}
		}()
	}
	if *jsonPath != "" {
		return runSuite(*jsonPath, *progress)
	}
	cfg := evmatching.PaperExperiments()
	if *quick {
		cfg = evmatching.QuickExperiments()
	}
	cfg.Runs = *runs
	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}
	var logw io.Writer
	if *progress {
		logw = os.Stderr
	}
	runner, err := experiments.NewRunner(cfg, logw)
	if err != nil {
		return err
	}
	ctx := context.Background()
	runFigures, runAblations := runner.RunAll, runner.RunAblations
	switch {
	case *format == "markdown":
		runFigures, runAblations = runner.RunAllMarkdown, runner.RunAblationsMarkdown
	case *format == "csv":
		runFigures = runner.RunAllCSV
	case *plots:
		runFigures = runner.RunAllPlots
	}
	if err := runFigures(ctx, out); err != nil {
		return err
	}
	if *ablations {
		if err := runAblations(ctx, out); err != nil {
			return err
		}
	}
	return nil
}

// runSuite runs the benchsuite and writes the JSON baseline file.
func runSuite(path string, progress bool) error {
	var logw io.Writer
	if progress {
		logw = os.Stderr
	}
	suite, err := benchsuite.Run(logw)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := suite.WriteJSON(f); err != nil {
		return err
	}
	fmt.Printf("wrote %d benchmark results to %s\n", len(suite.Results), path)
	return nil
}

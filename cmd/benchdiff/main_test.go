package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const oldOut = `goos: linux
goarch: amd64
BenchmarkSim-8            	30000000	        37.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkSim-8            	30000000	        39.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkSim-8            	30000000	        38.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkFilterMatch-8    	    1000	   120000 ns/op	    5000 B/op	      40 allocs/op
BenchmarkGone-8           	    1000	     1000 ns/op
PASS
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseMedianAndSuffixStripping(t *testing.T) {
	got, err := parse(strings.NewReader(oldOut))
	if err != nil {
		t.Fatal(err)
	}
	s, ok := got["BenchmarkSim"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: keys %v", got)
	}
	if m := median(s.ns); m != 38.0 {
		t.Errorf("median ns/op = %v, want 38", m)
	}
	if m := median(got["BenchmarkFilterMatch"].allocs); m != 40 {
		t.Errorf("median allocs/op = %v, want 40", m)
	}
}

func TestRunPassesWithinThreshold(t *testing.T) {
	newOut := strings.ReplaceAll(oldOut, "   120000 ns/op", "   130000 ns/op")
	oldPath := writeTemp(t, "old.txt", oldOut)
	newPath := writeTemp(t, "new.txt", newOut)
	var stdout, stderr strings.Builder
	if code := run([]string{"-threshold", "20", oldPath, newPath}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d within threshold; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "BenchmarkFilterMatch") {
		t.Errorf("table missing benchmark:\n%s", stdout.String())
	}
}

func TestRunFailsOnRegression(t *testing.T) {
	newOut := strings.ReplaceAll(oldOut, "   120000 ns/op", "   190000 ns/op")
	oldPath := writeTemp(t, "old.txt", oldOut)
	newPath := writeTemp(t, "new.txt", newOut)
	var stdout, stderr strings.Builder
	if code := run([]string{"-threshold", "20", oldPath, newPath}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d for >20%% regression, want 1", code)
	}
	if !strings.Contains(stdout.String(), "REGRESSION") {
		t.Errorf("table does not flag regression:\n%s", stdout.String())
	}
}

func TestRemovedAndAddedBenchmarksNotGated(t *testing.T) {
	// BenchmarkGone disappears, BenchmarkNew appears: neither is a failure.
	newOut := strings.ReplaceAll(oldOut, "BenchmarkGone-8           	    1000	     1000 ns/op\n", "BenchmarkNew-8            	    1000	     1100 ns/op\n")
	oldPath := writeTemp(t, "old.txt", oldOut)
	newPath := writeTemp(t, "new.txt", newOut)
	var stdout, stderr strings.Builder
	if code := run([]string{oldPath, newPath}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "removed; not gated") || !strings.Contains(out, "new; not gated") {
		t.Errorf("missing removed/new annotations:\n%s", out)
	}
}

func TestRunRejectsGarbage(t *testing.T) {
	oldPath := writeTemp(t, "old.txt", "no benchmarks here\n")
	newPath := writeTemp(t, "new.txt", oldOut)
	var stdout, stderr strings.Builder
	if code := run([]string{oldPath, newPath}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d for empty input, want 2", code)
	}
}

func TestRunRejectsEmptyFile(t *testing.T) {
	oldPath := writeTemp(t, "old.txt", "")
	newPath := writeTemp(t, "new.txt", oldOut)
	var stdout, stderr strings.Builder
	if code := run([]string{oldPath, newPath}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d for empty file, want 2", code)
	}
	if !strings.Contains(stderr.String(), "no benchmark lines") {
		t.Errorf("stderr missing diagnosis: %s", stderr.String())
	}
}

func TestRunRejectsTruncatedLine(t *testing.T) {
	// A result line cut off mid-write (e.g. the bench job was killed) must be
	// an error, not a silently dropped sample.
	truncated := oldOut + "BenchmarkCutOff-8    1000\n"
	oldPath := writeTemp(t, "old.txt", truncated)
	newPath := writeTemp(t, "new.txt", oldOut)
	var stdout, stderr strings.Builder
	if code := run([]string{oldPath, newPath}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d for truncated line, want 2; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "truncated benchmark line") {
		t.Errorf("stderr missing diagnosis: %s", stderr.String())
	}
}

func TestRunRejectsZeroNsSamples(t *testing.T) {
	// A benchmark whose lines carry metrics but never ns/op has zero usable
	// samples; gating on it would divide by a missing median.
	noNs := "BenchmarkOdd-8    1000    5000 B/op    40 allocs/op\n"
	oldPath := writeTemp(t, "old.txt", noNs)
	newPath := writeTemp(t, "new.txt", oldOut)
	var stdout, stderr strings.Builder
	if code := run([]string{oldPath, newPath}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d for zero ns/op samples, want 2; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "no ns/op samples") {
		t.Errorf("stderr missing diagnosis: %s", stderr.String())
	}
}

func TestParseSkipsBareNameLines(t *testing.T) {
	// `go test -v` prints the benchmark name alone before its result line;
	// that is legitimate output, not truncation.
	verbose := "BenchmarkSim\n" + oldOut
	got, err := parse(strings.NewReader(verbose))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got["BenchmarkSim"]; !ok {
		t.Fatalf("lost BenchmarkSim: keys %v", got)
	}
}

func TestIQR(t *testing.T) {
	if got := iqr([]float64{100}); got != 0 {
		t.Errorf("iqr of one sample = %v, want 0", got)
	}
	// Sorted 5 samples: quartiles fall on interpolated ranks 1 and 3.
	if got := iqr([]float64{10, 20, 30, 40, 50}); got != 20 {
		t.Errorf("iqr = %v, want 20", got)
	}
}

func TestAllowanceColumnLogsChosenGate(t *testing.T) {
	// BenchmarkSim has a tight spread (IQR 1ns, 3·IQR < 20%·38ns): pct wins.
	// BenchmarkNoisy has a wide spread: iqr wins. Both choices are logged.
	wide := oldOut + `BenchmarkNoisy-8    1000    100000 ns/op
BenchmarkNoisy-8    1000    120000 ns/op
BenchmarkNoisy-8    1000    140000 ns/op
`
	oldPath := writeTemp(t, "old.txt", wide)
	newPath := writeTemp(t, "new.txt", wide)
	var stdout, stderr strings.Builder
	if code := run([]string{oldPath, newPath}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d on identical runs; stderr: %s", code, stderr.String())
	}
	for _, line := range strings.Split(stdout.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "BenchmarkSim "):
			if !strings.Contains(line, "(pct)") {
				t.Errorf("tight-spread row should use the percentage gate: %s", line)
			}
		case strings.HasPrefix(line, "BenchmarkNoisy "):
			if !strings.Contains(line, "(iqr)") {
				t.Errorf("wide-spread row should use the IQR gate: %s", line)
			}
		}
	}
	if !strings.Contains(stdout.String(), "allowance") {
		t.Errorf("header missing allowance column:\n%s", stdout.String())
	}
}

func TestNoiseAdaptiveGateAbsorbsWideSpread(t *testing.T) {
	// Old medians at 120µs with a 20µs IQR: the 3·IQR allowance (60µs) beats
	// the 20% budget (24µs), so a 42% jump still passes...
	wideOld := `BenchmarkNoisy-8    1000    100000 ns/op
BenchmarkNoisy-8    1000    120000 ns/op
BenchmarkNoisy-8    1000    140000 ns/op
`
	newRun := "BenchmarkNoisy-8    1000    170000 ns/op\n"
	oldPath := writeTemp(t, "old.txt", wideOld)
	newPath := writeTemp(t, "new.txt", newRun)
	var stdout, stderr strings.Builder
	if code := run([]string{oldPath, newPath}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d for jump within 3·IQR, want 0; stdout:\n%s", code, stdout.String())
	}
	// ...but a jump past both budgets still fails...
	farPath := writeTemp(t, "far.txt", "BenchmarkNoisy-8    1000    190000 ns/op\n")
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{oldPath, farPath}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d for jump beyond 3·IQR, want 1; stdout:\n%s", code, stdout.String())
	}
	// ...and -iqr-mult 0 reverts to the pure percentage gate.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-iqr-mult", "0", oldPath, newPath}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d with IQR allowance disabled, want 1; stdout:\n%s", code, stdout.String())
	}
}

// TestSummaryFile pins the -summary satellite: the markdown table must carry
// one row per benchmark with the gate term (pct vs iqr) that chose its
// allowance, mark removed/added benchmarks as ungated, and append — not
// truncate — so repeated steps accumulate in $GITHUB_STEP_SUMMARY.
func TestSummaryFile(t *testing.T) {
	// BenchmarkSim's old samples (37,38,39) have a tight IQR, so its gate is
	// the percentage term; BenchmarkFilterMatch has one sample (IQR 0), also
	// pct. A wide-spread benchmark exercises the iqr term.
	wideOld := oldOut + "BenchmarkWide-8    100    100000 ns/op\nBenchmarkWide-8    100    200000 ns/op\nBenchmarkWide-8    100    900000 ns/op\n"
	wideNew := strings.ReplaceAll(wideOld, "BenchmarkGone", "BenchmarkFresh")
	oldPath := writeTemp(t, "old.txt", wideOld)
	newPath := writeTemp(t, "new.txt", wideNew)
	sumPath := filepath.Join(t.TempDir(), "summary.md")
	if err := os.WriteFile(sumPath, []byte("prior section\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	if code := run([]string{"-threshold", "20", "-iqr-mult", "3", "-summary", sumPath, oldPath, newPath}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(sumPath)
	if err != nil {
		t.Fatal(err)
	}
	md := string(raw)
	if !strings.HasPrefix(md, "prior section\n") {
		t.Error("-summary truncated the file instead of appending")
	}
	for _, want := range []string{
		"### benchdiff: no time/op regressions",
		"| benchmark |",
		"| gate term |",
		"| BenchmarkSim | 38.00 | 38.00 | +0.0% |",
		"| pct | pass |",
		"| iqr | pass |", // BenchmarkWide's 3·IQR dwarfs 20% of its median
		"| BenchmarkGone |",
		"removed (not gated)",
		"| BenchmarkFresh |",
		"new (not gated)",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("summary missing %q:\n%s", want, md)
		}
	}
	// The iqr row must be BenchmarkWide's, and regressions flip the verdict.
	for _, line := range strings.Split(md, "\n") {
		if strings.Contains(line, "| iqr |") && !strings.Contains(line, "BenchmarkWide") {
			t.Errorf("iqr gate term on unexpected row: %s", line)
		}
	}
	regNew := strings.ReplaceAll(wideNew, "   120000 ns/op", "   190000 ns/op")
	regPath := writeTemp(t, "reg.txt", regNew)
	sum2 := filepath.Join(t.TempDir(), "s2.md")
	if code := run([]string{"-threshold", "20", "-summary", sum2, oldPath, regPath}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d for regression, want 1", code)
	}
	raw2, err := os.ReadFile(sum2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw2), "**1 benchmark(s) regressed**") {
		t.Errorf("regressed verdict missing:\n%s", raw2)
	}
	if !strings.Contains(string(raw2), "| REGRESSION |") {
		t.Errorf("REGRESSION row missing:\n%s", raw2)
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const oldOut = `goos: linux
goarch: amd64
BenchmarkSim-8            	30000000	        37.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkSim-8            	30000000	        39.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkSim-8            	30000000	        38.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkFilterMatch-8    	    1000	   120000 ns/op	    5000 B/op	      40 allocs/op
BenchmarkGone-8           	    1000	     1000 ns/op
PASS
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseMedianAndSuffixStripping(t *testing.T) {
	got, err := parse(strings.NewReader(oldOut))
	if err != nil {
		t.Fatal(err)
	}
	s, ok := got["BenchmarkSim"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: keys %v", got)
	}
	if m := median(s.ns); m != 38.0 {
		t.Errorf("median ns/op = %v, want 38", m)
	}
	if m := median(got["BenchmarkFilterMatch"].allocs); m != 40 {
		t.Errorf("median allocs/op = %v, want 40", m)
	}
}

func TestRunPassesWithinThreshold(t *testing.T) {
	newOut := strings.ReplaceAll(oldOut, "   120000 ns/op", "   130000 ns/op")
	oldPath := writeTemp(t, "old.txt", oldOut)
	newPath := writeTemp(t, "new.txt", newOut)
	var stdout, stderr strings.Builder
	if code := run([]string{"-threshold", "20", oldPath, newPath}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d within threshold; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "BenchmarkFilterMatch") {
		t.Errorf("table missing benchmark:\n%s", stdout.String())
	}
}

func TestRunFailsOnRegression(t *testing.T) {
	newOut := strings.ReplaceAll(oldOut, "   120000 ns/op", "   190000 ns/op")
	oldPath := writeTemp(t, "old.txt", oldOut)
	newPath := writeTemp(t, "new.txt", newOut)
	var stdout, stderr strings.Builder
	if code := run([]string{"-threshold", "20", oldPath, newPath}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d for >20%% regression, want 1", code)
	}
	if !strings.Contains(stdout.String(), "REGRESSION") {
		t.Errorf("table does not flag regression:\n%s", stdout.String())
	}
}

func TestRemovedAndAddedBenchmarksNotGated(t *testing.T) {
	// BenchmarkGone disappears, BenchmarkNew appears: neither is a failure.
	newOut := strings.ReplaceAll(oldOut, "BenchmarkGone-8           	    1000	     1000 ns/op\n", "BenchmarkNew-8            	    1000	     1100 ns/op\n")
	oldPath := writeTemp(t, "old.txt", oldOut)
	newPath := writeTemp(t, "new.txt", newOut)
	var stdout, stderr strings.Builder
	if code := run([]string{oldPath, newPath}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "removed; not gated") || !strings.Contains(out, "new; not gated") {
		t.Errorf("missing removed/new annotations:\n%s", out)
	}
}

func TestRunRejectsGarbage(t *testing.T) {
	oldPath := writeTemp(t, "old.txt", "no benchmarks here\n")
	newPath := writeTemp(t, "new.txt", oldOut)
	var stdout, stderr strings.Builder
	if code := run([]string{oldPath, newPath}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d for empty input, want 2", code)
	}
}

// Command benchdiff compares two `go test -bench` outputs and fails when a
// benchmark's time/op regresses beyond a threshold — a dependency-free
// stand-in for benchstat, so CI can gate performance without fetching tools.
//
// Usage:
//
//	benchdiff [-threshold 20] [-iqr-mult 3] [-summary summary.md] old.txt new.txt
//
// Both files hold standard `go test -bench` output (run with -count N for a
// stable median; -benchmem adds the allocs/op column, reported but not
// gated). Benchmarks present in only one file are listed and skipped:
// additions and removals are not regressions.
//
// The gate is noise-adaptive: a benchmark regresses only when its median
// time/op grew by more than max(threshold% · old median, iqr-mult · IQR(old
// samples)). The percentage term catches drift on quiet micro-benchmarks; the
// IQR term widens the allowance for end-to-end benchmarks whose -count
// samples are inherently noisy, so a wide old spread does not flake CI. Each
// row logs its effective allowance and which term chose it (pct or iqr).
// Malformed input — an empty file, a truncated Benchmark line, a benchmark
// with no ns/op samples — is an error (exit 2), never silently ignored.
//
// -summary appends the comparison as a GitHub-flavored markdown table to the
// given file (pass "$GITHUB_STEP_SUMMARY" in CI): one row per benchmark with
// its delta, its effective allowance, and — the part the plain table buries —
// which gate term (pct or iqr) decided that allowance, so a reviewer can see
// at a glance whether a pass rode on the percentage budget or on a wide old
// spread.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 20, "maximum allowed time/op regression in percent")
	iqrMult := fs.Float64("iqr-mult", 3, "noise allowance: also permit regressions up to this multiple of the old samples' IQR")
	summary := fs.String("summary", "", "append a markdown summary table to this file (CI: pass \"$GITHUB_STEP_SUMMARY\")")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: benchdiff [-threshold pct] [-summary file] old.txt new.txt")
		return 2
	}
	old, err := parseFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	new_, err := parseFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}

	names := make([]string, 0, len(old))
	for name := range old {
		names = append(names, name)
	}
	sort.Strings(names)

	regressions := 0
	var rows []summaryRow
	fmt.Fprintf(stdout, "%-32s %14s %14s %8s %14s %18s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allowance", "allocs/op old→new")
	for _, name := range names {
		o := old[name]
		n, ok := new_[name]
		if !ok {
			fmt.Fprintf(stdout, "%-32s %14s %14s %8s %14s (removed; not gated)\n", name, format(median(o.ns)), "-", "-", "-")
			rows = append(rows, summaryRow{name: name, oldNs: format(median(o.ns)), newNs: "-", delta: "-", allowance: "-", result: "removed (not gated)"})
			continue
		}
		oldNs, newNs := median(o.ns), median(n.ns)
		delta := (newNs - oldNs) / oldNs * 100
		// Noise-adaptive gate: allow the larger of the percentage budget and
		// iqr-mult times the old samples' interquartile range. The allowance
		// column logs each benchmark's effective gate and which term chose it,
		// so a CI failure (or a suspicious pass) is auditable from the table.
		pctAllow := *threshold / 100 * oldNs
		iqrAllow := *iqrMult * iqr(o.ns)
		allowed, chosen := pctAllow, "pct"
		if iqrAllow > pctAllow {
			allowed, chosen = iqrAllow, "iqr"
		}
		allowance := fmt.Sprintf("≤+%.1f%%(%s)", allowed/oldNs*100, chosen)
		mark, result := "", "pass"
		if newNs-oldNs > allowed {
			mark = "  REGRESSION"
			result = "REGRESSION"
			regressions++
		}
		allocs := "-"
		if len(o.allocs) > 0 && len(n.allocs) > 0 {
			allocs = fmt.Sprintf("%.0f→%.0f", median(o.allocs), median(n.allocs))
		}
		fmt.Fprintf(stdout, "%-32s %14s %14s %+7.1f%% %14s %18s%s\n", name, format(oldNs), format(newNs), delta, allowance, allocs, mark)
		rows = append(rows, summaryRow{
			name:      name,
			oldNs:     format(oldNs),
			newNs:     format(newNs),
			delta:     fmt.Sprintf("%+.1f%%", delta),
			allowance: fmt.Sprintf("≤+%.1f%%", allowed/oldNs*100),
			gateTerm:  chosen,
			result:    result,
		})
	}
	var added []string
	for name := range new_ {
		if _, ok := old[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		fmt.Fprintf(stdout, "%-32s %14s %14s %8s %14s (new; not gated)\n", name, "-", format(median(new_[name].ns)), "-", "-")
		rows = append(rows, summaryRow{name: name, oldNs: "-", newNs: format(median(new_[name].ns)), delta: "-", allowance: "-", result: "new (not gated)"})
	}
	if *summary != "" {
		if err := appendSummary(*summary, rows, *threshold, *iqrMult, regressions); err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return 2
		}
	}
	if regressions > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d benchmark(s) regressed beyond max(%.0f%%, %.1f·IQR) on time/op\n", regressions, *threshold, *iqrMult)
		return 1
	}
	return 0
}

// summaryRow is one benchmark's comparison, rendered into the markdown job
// summary. gateTerm records which allowance term (pct or iqr) set the gate —
// the audit trail the CI job summary exists to surface.
type summaryRow struct {
	name, oldNs, newNs, delta, allowance, gateTerm, result string
}

// appendSummary appends the markdown comparison table to path. Append, not
// truncate: $GITHUB_STEP_SUMMARY accumulates sections from every step of a
// job, and local callers can aggregate several comparisons the same way.
func appendSummary(path string, rows []summaryRow, threshold, iqrMult float64, regressions int) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if err := writeSummary(f, rows, threshold, iqrMult, regressions); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeSummary renders the markdown table: per-benchmark medians, delta, the
// effective allowance with the gate term that chose it, and the verdict.
func writeSummary(w io.Writer, rows []summaryRow, threshold, iqrMult float64, regressions int) error {
	verdict := "no time/op regressions"
	if regressions > 0 {
		verdict = fmt.Sprintf("**%d benchmark(s) regressed**", regressions)
	}
	if _, err := fmt.Fprintf(w, "### benchdiff: %s\n\nGate: median time/op growth ≤ max(%.0f%% · old, %.1f·IQR(old)); the *gate term* column names which bound applied.\n\n| benchmark | old ns/op | new ns/op | delta | allowance | gate term | result |\n|---|---:|---:|---:|---:|:-:|---|\n", verdict, threshold, iqrMult); err != nil {
		return err
	}
	for _, r := range rows {
		term := r.gateTerm
		if term == "" {
			term = "-"
		}
		if _, err := fmt.Fprintf(w, "| %s | %s | %s | %s | %s | %s | %s |\n",
			r.name, r.oldNs, r.newNs, r.delta, r.allowance, term, r.result); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// samples collects one benchmark's repeated measurements.
type samples struct {
	ns     []float64
	allocs []float64
}

func parseFile(path string) (map[string]*samples, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out, err := parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return out, nil
}

// parse reads `go test -bench` output: one line per run, of the form
//
//	BenchmarkName-8   100   5325768 ns/op   751428 B/op   2397 allocs/op
//
// possibly with extra "value unit" metric pairs. The -N GOMAXPROCS suffix is
// stripped so runs from hosts with different core counts still align.
func parse(r io.Reader) (map[string]*samples, error) {
	out := make(map[string]*samples)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if len(fields) == 1 {
			continue // bare name line emitted by `go test -v`, not a result
		}
		if len(fields) < 4 {
			return nil, fmt.Errorf("truncated benchmark line %q", sc.Text())
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		s := out[name]
		if s == nil {
			s = &samples{}
			out[name] = s
		}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q on line %q", fields[i], sc.Text())
			}
			switch fields[i+1] {
			case "ns/op":
				s.ns = append(s.ns, val)
			case "allocs/op":
				s.allocs = append(s.allocs, val)
			}
		}
	}
	for name, s := range out {
		if len(s.ns) == 0 {
			return nil, fmt.Errorf("benchmark %s has no ns/op samples", name)
		}
	}
	return out, sc.Err()
}

// median of a non-empty sample set; the mean of the middle pair for even
// sizes, matching benchstat's center estimate closely enough for gating.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// iqr is the interquartile range of a non-empty sample set, with linearly
// interpolated quartiles so 3- and 5-sample `-count` runs get a sensible
// spread estimate.
func iqr(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentile(s, 0.75) - percentile(s, 0.25)
}

// percentile reads the p-quantile (0..1) from an ascending sample set using
// linear interpolation between closest ranks.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

func format(ns float64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.0f", ns)
	case ns >= 100:
		return fmt.Sprintf("%.1f", ns)
	default:
		return fmt.Sprintf("%.2f", ns)
	}
}

// Command mrworker joins a distributed MapReduce coordinator (see mrcoord)
// and executes map and reduce tasks until told to exit.
//
// Usage:
//
//	mrworker -dir /shared/dir -addr 127.0.0.1:7777 [-id worker-1]
//
// The -chaos-* flags turn the worker into a deterministic fault injector for
// exercising the coordinator's recovery paths across real processes: with a
// non-zero -chaos-seed, the worker crashes, stalls, drops and duplicates
// reports, and loses heartbeats per the seeded plan (see internal/chaos).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"evmatching/internal/chaos"
	"evmatching/internal/cluster"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mrworker:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mrworker", flag.ContinueOnError)
	var (
		dir       = fs.String("dir", "", "shared data directory (must match the coordinator)")
		addr      = fs.String("addr", "127.0.0.1:7777", "coordinator RPC address")
		id        = fs.String("id", "", "worker id (default: generated)")
		heartbeat = fs.Duration("heartbeat", cluster.DefaultHeartbeatInterval, "liveness ping interval (negative: disabled)")

		chaosSeed  = fs.Int64("chaos-seed", 0, "fault-injection seed (0: no faults)")
		chaosCrash = fs.Float64("chaos-crash", 0, "probability of crashing around a task")
		chaosStall = fs.Float64("chaos-stall", 0, "probability of stalling before reporting")
		chaosDrop  = fs.Float64("chaos-drop", 0, "probability of dropping a task report")
		chaosDup   = fs.Float64("chaos-dup", 0, "probability of duplicating a task report")
		chaosHB    = fs.Float64("chaos-hbloss", 0, "probability of losing a heartbeat burst")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return errors.New("-dir is required")
	}
	reg := cluster.NewRegistry()
	if err := cluster.RegisterWordCount(reg); err != nil {
		return err
	}
	wc := cluster.WorkerConfig{ID: *id, Dir: *dir, Registry: reg, HeartbeatInterval: *heartbeat}
	if *chaosSeed != 0 {
		inj, err := chaos.NewInjector(*chaosSeed, chaos.Config{
			CrashBeforeExecute: *chaosCrash,
			CrashBeforeReport:  *chaosCrash,
			Stall:              *chaosStall,
			DropReport:         *chaosDrop,
			DuplicateReport:    *chaosDup,
			HeartbeatLoss:      *chaosHB,
		})
		if err != nil {
			return err
		}
		wc.Faults = inj
		fmt.Printf("fault injection armed with seed %d\n", *chaosSeed)
	}
	w, err := cluster.NewWorker(*addr, wc)
	if err != nil {
		return err
	}
	fmt.Printf("worker joined %s\n", *addr)
	return w.Run(context.Background())
}

// Command mrworker joins a distributed MapReduce coordinator (see mrcoord)
// and executes map and reduce tasks until told to exit.
//
// Usage:
//
//	mrworker -dir /shared/dir -addr 127.0.0.1:7777 [-id worker-1]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"evmatching/internal/cluster"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mrworker:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mrworker", flag.ContinueOnError)
	var (
		dir  = fs.String("dir", "", "shared data directory (must match the coordinator)")
		addr = fs.String("addr", "127.0.0.1:7777", "coordinator RPC address")
		id   = fs.String("id", "", "worker id (default: generated)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return errors.New("-dir is required")
	}
	reg := cluster.NewRegistry()
	if err := cluster.RegisterWordCount(reg); err != nil {
		return err
	}
	w, err := cluster.NewWorker(*addr, cluster.WorkerConfig{ID: *id, Dir: *dir, Registry: reg})
	if err != nil {
		return err
	}
	fmt.Printf("worker joined %s\n", *addr)
	return w.Run(context.Background())
}

package main

import (
	"testing"
)

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("want error for missing -dir")
	}
	// Nothing listening on the address: dial must fail quickly.
	if err := run([]string{"-dir", t.TempDir(), "-addr", "127.0.0.1:1"}); err == nil {
		t.Error("want dial error")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("want flag parse error")
	}
}

// Command evshardd hosts one stream shard windower as a worker process for
// the shardrpc supervisor (DESIGN.md §15). It prints "listening <addr>" on
// stdout once bound, serves the EVShard rpc service, and exits when its
// stdin — held open by the supervisor — reaches EOF, so supervisor death
// never leaves orphans. It is normally spawned by `evstream -shard-workers`
// or `evserve -stream-shard-workers`, not run by hand.
package main

import (
	"os"

	"evmatching/internal/shardrpc"
)

func main() {
	os.Exit(shardrpc.WorkerMain(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

package main

import (
	"context"
	"fmt"
	"time"

	"evmatching/internal/cluster"
)

// runWorkerForTest joins one demo worker to the coordinator, retrying the
// dial until the coordinator is listening, then processes tasks in the
// background. Worker RPC errors after the coordinator shuts down are
// expected and ignored. Used by the end-to-end test.
func runWorkerForTest(addr, dir string, dialBudget time.Duration) error {
	reg := cluster.NewRegistry()
	if err := cluster.RegisterWordCount(reg); err != nil {
		return err
	}
	deadline := time.Now().Add(dialBudget)
	for {
		w, err := cluster.NewWorker(addr, cluster.WorkerConfig{ID: "test-worker", Dir: dir, Registry: reg})
		if err == nil {
			go func() {
				// The coordinator closing mid-request surfaces as an RPC
				// error here; the job result is what the test asserts on.
				_ = w.Run(context.Background())
			}()
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("dial coordinator: %w", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Command mrcoord runs a distributed MapReduce coordinator and submits one
// demo word-count job over a text file, printing per-word counts once enough
// mrworker processes have pulled all the tasks.
//
// Usage:
//
//	mrcoord -dir /shared/dir -addr 127.0.0.1:7777 -in corpus.txt
//
// Start one or more workers against the same address and directory:
//
//	mrworker -dir /shared/dir -addr 127.0.0.1:7777
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"

	"evmatching/internal/cluster"
	"evmatching/internal/mapreduce"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mrcoord:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mrcoord", flag.ContinueOnError)
	var (
		dir         = fs.String("dir", "", "shared data directory (required)")
		addr        = fs.String("addr", "127.0.0.1:7777", "listen address for worker RPC")
		in          = fs.String("in", "", "input text file (required)")
		reducers    = fs.Int("reducers", 4, "number of reduce partitions")
		maps        = fs.Int("maps", 8, "number of map tasks")
		taskTimeout = fs.Duration("task-timeout", cluster.DefaultTaskTimeout, "lease before a task is re-executed")
		hbTimeout   = fs.Duration("heartbeat-timeout", 0, "silence before a worker is declared dead (0: 2x task timeout)")
		specAfter   = fs.Duration("speculative-after", 0, "age before a straggler task is speculatively re-dispatched (0: half the task timeout, negative: disabled)")
		poolTimeout = fs.Duration("pool-timeout", 0, "empty-pool duration before a job fails with ErrNoWorkers (0: wait forever)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" || *in == "" {
		return errors.New("-dir and -in are required")
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	var input []mapreduce.KeyValue
	scanner := bufio.NewScanner(f)
	for i := 0; scanner.Scan(); i++ {
		input = append(input, mapreduce.KeyValue{Key: strconv.Itoa(i), Value: scanner.Text()})
	}
	if err := scanner.Err(); err != nil {
		return err
	}

	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Dir:              *dir,
		TaskTimeout:      *taskTimeout,
		HeartbeatTimeout: *hbTimeout,
		SpeculativeAfter: *specAfter,
		PoolTimeout:      *poolTimeout,
	})
	if err != nil {
		return err
	}
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("coordinator listening on %s; waiting for workers...\n", coord.Serve(lis))
	defer coord.Close()

	res, err := coord.RunJob(context.Background(), cluster.JobSpec{
		Name:        "wordcount",
		MapName:     cluster.DemoWordCountMap,
		ReduceName:  cluster.DemoWordCountReduce,
		NumMapTasks: *maps,
		NumReducers: *reducers,
	}, input)
	if err != nil {
		return err
	}
	for _, kv := range res.Output {
		fmt.Printf("%s\t%s\n", kv.Key, kv.Value)
	}
	fmt.Printf("# %d lines mapped, %d words emitted\n",
		res.Counters.Get(mapreduce.CounterMapIn), res.Counters.Get(mapreduce.CounterMapOut))
	if st := coord.Stats(); st != (cluster.Stats{}) {
		fmt.Printf("# recovery: %d retries, %d evictions, %d speculative (%d won), %d stale reports, %d dead workers\n",
			st.Retries, st.Evictions, st.SpeculativeDispatches, st.SpeculativeWins,
			st.StaleReports, st.DeadWorkers)
	}
	return nil
}

package main

import (
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// freePort reserves an ephemeral localhost port and returns its address.
func freePort(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	if err := lis.Close(); err != nil {
		t.Fatal(err)
	}
	return addr
}

func TestCoordinatorAndWorkerEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "corpus.txt")
	if err := os.WriteFile(in, []byte("go go gadget\ngadget go\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	addr := freePort(t)

	// Silence stdout from both run functions.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-dir", dir, "-addr", addr, "-in", in, "-reducers", "2", "-maps", "2"})
	}()

	// Give the coordinator a moment to listen, then join one worker (the
	// worker loop is defined in cmd/mrworker; here we exercise the RPC path
	// through the cluster package the same way that command does).
	if err := runWorkerForTest(addr, dir, 3*time.Second); err != nil {
		t.Fatalf("worker: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("coordinator run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator did not finish")
	}
}

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("want error for missing flags")
	}
	if err := run([]string{"-dir", t.TempDir(), "-in", "no-such-file", "-addr", freePort(t)}); err == nil {
		t.Error("want error for missing input file")
	}
}

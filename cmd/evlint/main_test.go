package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module and chdirs into it, restoring the
// working directory when the test ends.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module example.com/tmpmod\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	})
	return dir
}

const violatingSource = `package core

func Last(m map[string]int) int {
	last := 0
	for _, v := range m {
		last = v
	}
	return last
}
`

const cleanSource = `package core

func Total(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}
`

func TestRunReportsFindings(t *testing.T) {
	writeModule(t, map[string]string{"internal/core/core.go": violatingSource})
	var out, errb strings.Builder
	if code := run([]string{"./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "maprange") {
		t.Errorf("stdout does not name the rule:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "core.go:5:") {
		t.Errorf("finding not at the range statement:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "1 finding(s)") {
		t.Errorf("stderr summary missing:\n%s", errb.String())
	}
}

func TestRunCleanTreeExitsZero(t *testing.T) {
	writeModule(t, map[string]string{"internal/core/core.go": cleanSource})
	var out, errb strings.Builder
	if code := run([]string{"./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout:\n%s stderr:\n%s", code, out.String(), errb.String())
	}
	if out.String() != "" {
		t.Errorf("clean tree produced output:\n%s", out.String())
	}
}

func TestRunJSONFormat(t *testing.T) {
	writeModule(t, map[string]string{"internal/core/core.go": violatingSource})
	var out, errb strings.Builder
	if code := run([]string{"-format", "json", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("want one JSON line per finding, got %d:\n%s", len(lines), out.String())
	}
	var f struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Rule    string `json:"rule"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &f); err != nil {
		t.Fatalf("finding line is not JSON: %v\n%s", err, lines[0])
	}
	if f.Rule != "maprange" || f.Line != 5 || f.Col == 0 || f.Message == "" {
		t.Errorf("unexpected finding fields: %+v", f)
	}
	if f.File != filepath.Join("internal", "core", "core.go") {
		t.Errorf("file = %q, want module-relative path", f.File)
	}
}

func TestRunJSONCleanTree(t *testing.T) {
	writeModule(t, map[string]string{"internal/core/core.go": cleanSource})
	var out, errb strings.Builder
	if code := run([]string{"-format", "json", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, errb.String())
	}
	if out.String() != "" {
		t.Errorf("clean tree produced JSON output:\n%s", out.String())
	}
}

func TestRunUnknownFormat(t *testing.T) {
	writeModule(t, map[string]string{"internal/core/core.go": cleanSource})
	var out, errb strings.Builder
	if code := run([]string{"-format", "xml", "./..."}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown format") {
		t.Errorf("stderr does not explain the bad format:\n%s", errb.String())
	}
}

func TestRunRuleSubset(t *testing.T) {
	writeModule(t, map[string]string{"internal/core/core.go": violatingSource})
	var out, errb strings.Builder
	// The violation is maprange-only, so running just errwrap passes.
	if code := run([]string{"-rules", "errwrap", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout:\n%s", code, out.String())
	}
}

func TestRunUnknownRule(t *testing.T) {
	writeModule(t, map[string]string{"internal/core/core.go": cleanSource})
	var out, errb strings.Builder
	if code := run([]string{"-rules", "nope", "./..."}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown rule") {
		t.Errorf("stderr does not explain the bad rule:\n%s", errb.String())
	}
}

func TestRunPatternRestriction(t *testing.T) {
	writeModule(t, map[string]string{
		"internal/core/core.go":  violatingSource,
		"internal/other/kind.go": strings.Replace(cleanSource, "package core", "package other", 1),
	})
	var out, errb strings.Builder
	// Restricting to the clean package hides the core violation.
	if code := run([]string{"internal/other"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout:\n%s", code, out.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"internal/core/..."}, &out, &errb); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, errb.String())
	}
}

// Command evlint runs the project's static-analysis pass suite over the
// module and exits nonzero on findings, so it can gate CI.
//
// Usage:
//
//	evlint [-rules maprange,poolescape,...] [-format text|json] [-v] [patterns]
//
// Patterns follow the go tool loosely: "./..." (the default) lints the whole
// module; a package directory (with or without a trailing /...) restricts
// the report to packages under it. Analysis always type-checks the full
// module so cross-package types resolve.
//
// -format json emits one JSON object per finding, one per line:
//
//	{"file":"internal/x/x.go","line":12,"col":3,"rule":"maprange","message":"..."}
//
// a shape a CI problem matcher can parse line-by-line.
//
// Suppress a finding by annotating the line (or the line above) with
//
//	//evlint:ignore <rule> <reason>
//
// The reason is mandatory; reasonless directives are themselves findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"evmatching/internal/lint"
)

// jsonFinding is the -format json shape, one object per line.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("evlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		rules   = fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
		format  = fs.String("format", "text", "output format: text or json (one object per finding per line)")
		verbose = fs.Bool("v", false, "report package count and type-check diagnostics")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "evlint: unknown format %q (want text or json)\n", *format)
		return 2
	}

	analyzers, err := selectAnalyzers(*rules)
	if err != nil {
		fmt.Fprintln(stderr, "evlint:", err)
		return 2
	}

	root, err := lint.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(stderr, "evlint:", err)
		return 2
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "evlint:", err)
		return 2
	}
	pkgs, err = filterPackages(pkgs, root, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "evlint:", err)
		return 2
	}
	if *verbose {
		fmt.Fprintf(stderr, "evlint: %d packages\n", len(pkgs))
		for _, p := range pkgs {
			for _, te := range p.TypeErrors {
				fmt.Fprintf(stderr, "evlint: typecheck %s: %v\n", p.Path, te)
			}
		}
	}

	findings := lint.Run(pkgs, analyzers)
	cwd, _ := os.Getwd()
	enc := json.NewEncoder(stdout)
	for _, f := range findings {
		pos := f.Pos
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				pos.Filename = rel
			}
		}
		if *format == "json" {
			// Encode writes exactly one line per finding — JSON Lines, so a
			// problem matcher or jq stream consumes findings one by one.
			err := enc.Encode(jsonFinding{
				File:    pos.Filename,
				Line:    pos.Line,
				Col:     pos.Column,
				Rule:    f.Rule,
				Message: f.Message,
			})
			if err != nil {
				fmt.Fprintln(stderr, "evlint:", err)
				return 2
			}
			continue
		}
		fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, f.Rule, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "evlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -rules flag against the registered suite.
func selectAnalyzers(rules string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if rules == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(rules, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// filterPackages restricts the report to packages matching the patterns.
func filterPackages(pkgs []*lint.Package, root string, patterns []string) ([]*lint.Package, error) {
	if len(patterns) == 0 {
		return pkgs, nil
	}
	var keep []*lint.Package
	matched := false
	for _, pat := range patterns {
		if pat == "./..." || pat == "..." || pat == "all" {
			return pkgs, nil
		}
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		}
		dir, err := filepath.Abs(pat)
		if err != nil {
			return nil, fmt.Errorf("resolve pattern %q: %w", pat, err)
		}
		for _, p := range pkgs {
			if p.Dir == dir || (recursive && strings.HasPrefix(p.Dir, dir+string(filepath.Separator))) {
				keep = append(keep, p)
				matched = true
			}
		}
	}
	if !matched {
		return nil, fmt.Errorf("no packages match %v", patterns)
	}
	return dedupPackages(keep), nil
}

func dedupPackages(pkgs []*lint.Package) []*lint.Package {
	seen := make(map[string]bool, len(pkgs))
	out := pkgs[:0]
	for _, p := range pkgs {
		if !seen[p.Path] {
			seen[p.Path] = true
			out = append(out, p)
		}
	}
	return out
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"evmatching"
)

func writeDataset(t *testing.T) string {
	t.Helper()
	cfg := evmatching.DefaultDatasetConfig()
	cfg.NumPersons = 30
	cfg.Density = 6
	cfg.NumWindows = 8
	cfg.ELocal = evmatching.DefaultELocalConfig()
	ds, err := evmatching.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "w.gob")
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunRendersSVG(t *testing.T) {
	data := writeDataset(t)
	out := filepath.Join(t.TempDir(), "world.svg")
	err := run([]string{
		"-data", data,
		"-out", out,
		"-persons", "0, 1",
		"-stations",
		"-size", "600",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	svg, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	text := string(svg)
	if !strings.Contains(text, "<svg") || !strings.Contains(text, "</svg>") {
		t.Error("incomplete SVG")
	}
	if !strings.Contains(text, `width="600"`) {
		t.Error("size flag ignored")
	}
}

func TestRunEIDTracks(t *testing.T) {
	data := writeDataset(t)
	ds, err := evmatching.LoadDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "e.svg")
	if err := run([]string{"-data", data, "-out", out, "-eids", string(ds.AllEIDs()[0])}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("want error for missing flags")
	}
	data := writeDataset(t)
	out := filepath.Join(t.TempDir(), "x.svg")
	if err := run([]string{"-data", data, "-out", out, "-persons", "zero"}); err == nil {
		t.Error("want error for bad person index")
	}
	if err := run([]string{"-data", "missing.gob", "-out", out}); err == nil {
		t.Error("want error for missing dataset")
	}
}

// Command evviz renders an EV dataset as an SVG: the cell layout, optional
// RSSI stations, and selected trajectories (solid = visual tracks, dashed =
// electronic tracks).
//
// Usage:
//
//	evviz -data world.gob -out world.svg [-persons 0,1,2] [-eids aa:bb:...]
//	      [-stations] [-size 800]
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"evmatching"
	"evmatching/internal/viz"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "evviz:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("evviz", flag.ContinueOnError)
	var (
		data     = fs.String("data", "", "dataset file from evgen (required)")
		out      = fs.String("out", "", "output SVG file (required)")
		persons  = fs.String("persons", "", "comma-separated person indexes to draw")
		eids     = fs.String("eids", "", "comma-separated EIDs whose E-trajectories to draw")
		stations = fs.Bool("stations", false, "draw RSSI stations if present")
		size     = fs.Int("size", 800, "output edge length in pixels")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" || *out == "" {
		return errors.New("-data and -out are required")
	}
	ds, err := evmatching.LoadDataset(*data)
	if err != nil {
		return err
	}
	opts := viz.Options{Size: *size, ShowStations: *stations}
	for _, s := range splitList(*persons) {
		idx, err := strconv.Atoi(s)
		if err != nil {
			return fmt.Errorf("bad person index %q: %w", s, err)
		}
		opts.Persons = append(opts.Persons, idx)
	}
	for _, s := range splitList(*eids) {
		opts.EIDs = append(opts.EIDs, evmatching.EID(s))
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	if err := viz.Render(bw, ds, opts); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d persons, %d E-tracks)\n", *out, len(opts.Persons), len(opts.EIDs))
	return nil
}

// splitList splits a comma-separated flag value, dropping empty entries.
func splitList(v string) []string {
	var out []string
	for _, s := range strings.Split(v, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

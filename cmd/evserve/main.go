// Command evserve matches a dataset universally and serves fusion queries
// over HTTP: the end state the paper motivates, where one query retrieves a
// person's electronic and visual information together.
//
// Usage:
//
//	evserve -data world.gob [-addr 127.0.0.1:8080] [-mode serial|parallel]
//
// Endpoints: /healthz, /match?eid=, /reverse?vid=, /trajectory?eid=,
// /whowasat?cell=&window=.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"evmatching"
	"evmatching/internal/server"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "evserve:", err)
		os.Exit(1)
	}
}

// run starts the server; when ready is non-nil, the bound address is sent on
// it once the listener is up (used by tests).
func run(args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("evserve", flag.ContinueOnError)
	var (
		data     = fs.String("data", "", "dataset file from evgen (required)")
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address")
		modeName = fs.String("mode", "serial", "matching mode: serial or parallel")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return errors.New("-data is required")
	}
	ds, err := evmatching.LoadDataset(*data)
	if err != nil {
		return err
	}
	opts := evmatching.Options{}
	switch *modeName {
	case "serial":
		opts.Mode = evmatching.ModeSerial
	case "parallel":
		opts.Mode = evmatching.ModeParallel
	default:
		return fmt.Errorf("unknown mode %q", *modeName)
	}

	fmt.Printf("matching %d EIDs universally...\n", len(ds.AllEIDs()))
	start := time.Now()
	m, err := evmatching.NewMatcher(ds, opts)
	if err != nil {
		return err
	}
	rep, err := m.MatchAll(context.Background())
	if err != nil {
		return err
	}
	idx, err := evmatching.BuildFusionIndex(ds, rep)
	if err != nil {
		return err
	}
	fmt.Printf("indexed %d pairs in %v (accuracy vs truth %.1f%%)\n",
		idx.Len(), time.Since(start).Round(time.Millisecond),
		rep.Accuracy(ds.TruthVID)*100)

	srv, err := server.New(ds, idx)
	if err != nil {
		return err
	}
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving fusion queries on http://%s\n", lis.Addr())
	if ready != nil {
		ready <- lis.Addr().String()
	}
	return http.Serve(lis, srv)
}

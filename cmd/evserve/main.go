// Command evserve matches a dataset universally and serves fusion queries
// over HTTP: the end state the paper motivates, where one query retrieves a
// person's electronic and visual information together.
//
// Usage:
//
//	evserve -data world.gob [-addr 127.0.0.1:8080] [-mode serial|parallel|cluster] [-workers 3]
//	        [-stream-window 0] [-stream-lateness 250] [-stream-shards 0]
//	        [-stream-shard-workers 0] [-shardd path]
//	        [-stream-checkpoint state.ckpt] [-stream-checkpoint-every 30s]
//	        [-mem-budget 0] [-spill-dir ""]
//
// Endpoints: /healthz, /match?eid=, /reverse?vid=, /trajectory?eid=,
// /whowasat?cell=&window=, /metricsz.
//
// With -stream-window > 0 a live stream engine runs alongside the batch
// index, adding POST /ingest (JSONL observations) and GET /stream (SSE
// resolutions); its gauges join /metricsz. With -stream-checkpoint the
// stream state is restored from the named file on startup (when present)
// and rewritten durably on the -stream-checkpoint-every interval, so a
// restarted server resumes instead of starting cold. With -mem-budget N
// both the batch shuffle and the sealed stream windows spill past N bytes
// of resident state (DESIGN.md §14); the spill_* gauges join /metricsz. With -stream-shards N > 0 the
// ingest path runs through the sharded router instead: observations partition
// by cell across N concurrent windowers, and /metricsz additionally carries
// the per-shard stream_shard<N>_ingested gauges plus stream_shards and
// stream_shard_redispatches. With -stream-shard-workers N > 0 the N shards
// run in separate evshardd worker processes over net/rpc (DESIGN.md §15),
// supervised and redispatched on death; -shardd names the worker binary
// (default: evshardd next to evserve, else on PATH), and the shardrpc_*
// worker gauges — spawns, kills, retries, redispatches, per-shard apply
// latency — join /metricsz.
//
// In cluster mode the matching phase runs on the fault-tolerant distributed
// runtime (an in-process coordinator plus -workers workers over localhost
// RPC), degrading to the serial path if the pool collapses; its recovery
// counters — retries, evictions, speculative wins — are then served at
// /metricsz.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"evmatching"
	"evmatching/internal/cluster"
	"evmatching/internal/mapreduce"
	"evmatching/internal/metrics"
	"evmatching/internal/server"
	"evmatching/internal/shardrpc"
	"evmatching/internal/spill"
	"evmatching/internal/stream"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "evserve:", err)
		os.Exit(1)
	}
}

// startCluster boots an in-process coordinator and workers over localhost
// RPC and returns the adapted executor plus a shutdown function that joins
// every goroutine and removes the shared scratch directory.
func startCluster(workers int) (*cluster.Executor, func(), error) {
	dir, err := os.MkdirTemp("", "evserve-cluster-")
	if err != nil {
		return nil, nil, err
	}
	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{Dir: dir})
	if err != nil {
		_ = os.RemoveAll(dir)
		return nil, nil, err
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = coord.Close()
		_ = os.RemoveAll(dir)
		return nil, nil, err
	}
	addr := coord.Serve(lis)
	reg := cluster.NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		w, err := cluster.NewWorker(addr, cluster.WorkerConfig{
			ID:       fmt.Sprintf("evserve-w%d", i),
			Dir:      dir,
			Registry: reg,
		})
		if err != nil {
			cancel()
			_ = coord.Close()
			wg.Wait()
			_ = os.RemoveAll(dir)
			return nil, nil, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(ctx)
		}()
	}
	exec, err := cluster.NewExecutor(coord, reg)
	if err != nil {
		cancel()
		_ = coord.Close()
		wg.Wait()
		_ = os.RemoveAll(dir)
		return nil, nil, err
	}
	// Graceful degradation: if every worker dies, the matching phase falls
	// back to the in-process serial engine rather than failing the command.
	exec.Fallback = mapreduce.SerialExecutor{}
	shutdown := func() {
		_ = coord.Close()
		cancel()
		wg.Wait()
		_ = os.RemoveAll(dir)
	}
	return exec, shutdown, nil
}

// publishClusterStats copies the coordinator's fault-recovery totals into the
// registry served at /metricsz.
func publishClusterStats(reg *metrics.Registry, stats cluster.Stats, fallbacks int64) {
	reg.Set("cluster.retries", stats.Retries)
	reg.Set("cluster.evictions", stats.Evictions)
	reg.Set("cluster.speculative_dispatches", stats.SpeculativeDispatches)
	reg.Set("cluster.speculative_wins", stats.SpeculativeWins)
	reg.Set("cluster.stale_reports", stats.StaleReports)
	reg.Set("cluster.dead_workers", stats.DeadWorkers)
	reg.Set("cluster.fallbacks", fallbacks)
}

// publishBlockStats copies the batch matcher's blocking-index totals into the
// registry served at /metricsz: how many scenario probes the split stage
// actually ran and how many the coarse signatures pruned (DESIGN.md §13).
// The ratio gauge is an integer percent — the registry carries int64 gauges.
// A live stream engine publishes the same gauge names for its own incremental
// splits; last writer wins, and both describe the same pruning machinery.
func publishBlockStats(reg *metrics.Registry, rep *evmatching.Report) {
	reg.Set("block_candidates_total", rep.BlockCandidates)
	reg.Set("block_pruned_total", rep.BlockPruned)
	reg.Set("block_prune_ratio", stream.BlockPruneRatioPercent(rep.BlockCandidates, rep.BlockPruned))
}

// publishSpillStats copies the batch run's out-of-core totals into the
// registry served at /metricsz. A live stream engine republishes the same
// gauge names with its own running totals (which include any budgeted
// finalize); all-zero when -mem-budget is unset or never exceeded.
func publishSpillStats(reg *metrics.Registry, s spill.Snapshot) {
	reg.SetMany(map[string]int64{
		"spill_bytes_spilled": s.BytesSpilled,
		"spill_runs_written":  s.RunsWritten,
		"spill_runs_merged":   s.RunsMerged,
		"spill_reloads":       s.Reloads,
		"spill_evictions":     s.Evictions,
	})
}

// startStream builds the live-ingestion processor, resuming from the
// checkpoint file when one exists (both the v2 single-engine and v3 sharded
// formats restore into either topology). A non-nil runner hosts the shards
// through it — the evshardd worker-process path — instead of in-process
// goroutines.
func startStream(cfg stream.Config, shards int, runner stream.ShardRunner, ckptPath string) (stream.Processor, error) {
	rcfg := stream.RouterConfig{Config: cfg, Shards: shards, Runner: runner}
	if ckptPath != "" {
		cf, err := os.Open(ckptPath)
		switch {
		case err == nil:
			defer cf.Close()
			if shards > 0 {
				return stream.RestoreRouter(rcfg, cf)
			}
			return stream.Restore(cfg, cf)
		case errors.Is(err, os.ErrNotExist):
			// First run: nothing to resume.
		default:
			return nil, err
		}
	}
	if shards > 0 {
		return stream.NewRouter(rcfg)
	}
	return stream.NewEngine(cfg)
}

// checkpointLoop rewrites the stream checkpoint on every tick, durably and
// atomically — the same fsync-before-and-after-rename sequence evstream and
// the spill run writer use — so a crashed or restarted server resumes from
// the last completed write instead of replaying from cold.
func checkpointLoop(proc stream.Processor, path string, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for range t.C {
		if err := spill.WriteFileAtomic(spill.OS{}, path, proc.Checkpoint); err != nil {
			fmt.Fprintln(os.Stderr, "evserve: stream checkpoint:", err)
		}
	}
}

// run starts the server; when ready is non-nil, the bound address is sent on
// it once the listener is up (used by tests).
func run(args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("evserve", flag.ContinueOnError)
	var (
		data           = fs.String("data", "", "dataset file from evgen (required)")
		addr           = fs.String("addr", "127.0.0.1:8080", "listen address")
		modeName       = fs.String("mode", "serial", "matching mode: serial, parallel, or cluster")
		workers        = fs.Int("workers", 3, "worker count for -mode cluster")
		streamWindow   = fs.Int64("stream-window", 0, "enable live ingestion with this event-time window in ms (0 = off)")
		streamLateness = fs.Int64("stream-lateness", 250, "allowed lateness for live ingestion in ms")
		streamShards   = fs.Int("stream-shards", 0, "cell-range ingest shards for live ingestion (0 = unsharded single engine)")
		streamShardWks = fs.Int("stream-shard-workers", 0, "run N ingest shards in separate evshardd worker processes (mutually exclusive with -stream-shards)")
		sharddPath     = fs.String("shardd", "", "evshardd worker binary for -stream-shard-workers (default: next to evserve, else on PATH)")
		streamCkpt     = fs.String("stream-checkpoint", "", "stream checkpoint file: restored on startup when present, rewritten periodically")
		streamCkptIvl  = fs.Duration("stream-checkpoint-every", 30*time.Second, "interval between stream checkpoint writes (0 = only restore)")
		memBudget      = fs.Int64("mem-budget", 0, "bytes of in-memory shuffle and sealed-window state; past it, state spills to disk (0 = unlimited)")
		spillDir       = fs.String("spill-dir", "", "directory for spill files (default: OS temp dir)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return errors.New("-data is required")
	}
	if *streamShardWks > 0 && *streamShards > 0 {
		return errors.New("use either -stream-shards or -stream-shard-workers, not both")
	}
	if *streamShardWks > 0 && *streamWindow <= 0 {
		return errors.New("-stream-shard-workers needs -stream-window > 0")
	}
	ds, err := evmatching.LoadDataset(*data)
	if err != nil {
		return err
	}
	reg := metrics.NewRegistry()
	opts := evmatching.Options{MemBudget: *memBudget, SpillDir: *spillDir}
	var clusterExec *cluster.Executor
	switch *modeName {
	case "serial":
		opts.Mode = evmatching.ModeSerial
	case "parallel":
		opts.Mode = evmatching.ModeParallel
	case "cluster":
		if *workers < 1 {
			return fmt.Errorf("-mode cluster needs -workers >= 1, got %d", *workers)
		}
		exec, shutdown, err := startCluster(*workers)
		if err != nil {
			return err
		}
		defer shutdown()
		opts.Mode = evmatching.ModeParallel
		opts.Executor = exec
		clusterExec = exec
	default:
		return fmt.Errorf("unknown mode %q", *modeName)
	}

	fmt.Printf("matching %d EIDs universally...\n", len(ds.AllEIDs()))
	start := time.Now()
	m, err := evmatching.NewMatcher(ds, opts)
	if err != nil {
		return err
	}
	rep, err := m.MatchAll(context.Background())
	if err != nil {
		return err
	}
	idx, err := evmatching.BuildFusionIndex(ds, rep)
	if err != nil {
		return err
	}
	fmt.Printf("indexed %d pairs in %v (accuracy vs truth %.1f%%)\n",
		idx.Len(), time.Since(start).Round(time.Millisecond),
		rep.Accuracy(ds.TruthVID)*100)
	if clusterExec != nil {
		publishClusterStats(reg, clusterExec.Stats(), clusterExec.Fallbacks())
	}
	publishBlockStats(reg, rep)
	publishSpillStats(reg, rep.Spill)

	srvOpts := []server.Option{server.WithMetrics(reg.Snapshot)}
	if *streamWindow > 0 {
		scfg := stream.Config{
			Targets:    ds.AllEIDs(),
			WindowMS:   *streamWindow,
			LatenessMS: *streamLateness,
			Dim:        ds.Config.DescriptorDim(),
			MemBudget:  *memBudget,
			SpillDir:   *spillDir,
			Metrics:    reg,
		}
		nshards := *streamShards
		var runner stream.ShardRunner
		if *streamShardWks > 0 {
			nshards = *streamShardWks
			bin, err := shardrpc.ResolveWorkerBinary(*sharddPath)
			if err != nil {
				return err
			}
			sup := shardrpc.NewSupervisor(shardrpc.SupervisorConfig{
				Command: []string{bin},
				Metrics: reg,
				Stderr:  os.Stderr,
			})
			// The supervisor closes after the router (defers run LIFO), so
			// shard stop channels quiesce worker traffic before the
			// processes are torn down.
			defer sup.Close()
			runner = sup
		}
		proc, err := startStream(scfg, nshards, runner, *streamCkpt)
		if err != nil {
			return err
		}
		if router, ok := proc.(*stream.Router); ok {
			defer router.Close()
			if *streamShardWks > 0 {
				fmt.Printf("live ingestion sharded across %d evshardd worker processes\n", nshards)
			} else {
				fmt.Printf("live ingestion sharded across %d cell-range windowers\n", nshards)
			}
		}
		if n := proc.Ingested(); n > 0 {
			fmt.Printf("resumed stream state from %s at observation %d\n", *streamCkpt, n)
		}
		if *streamCkpt != "" && *streamCkptIvl > 0 {
			go checkpointLoop(proc, *streamCkpt, *streamCkptIvl)
		}
		srvOpts = append(srvOpts, server.WithStream(proc))
		fmt.Printf("live ingestion enabled: window %d ms, lateness %d ms, %d targets\n",
			*streamWindow, *streamLateness, len(ds.AllEIDs()))
	}
	srv, err := server.New(ds, idx, srvOpts...)
	if err != nil {
		return err
	}
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving fusion queries on http://%s\n", lis.Addr())
	if ready != nil {
		ready <- lis.Addr().String()
	}
	return http.Serve(lis, srv)
}

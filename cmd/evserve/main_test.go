package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"evmatching"
	"evmatching/internal/scenario"
	"evmatching/internal/spill"
	"evmatching/internal/stream"
)

func writeDataset(t *testing.T) string {
	t.Helper()
	cfg := evmatching.DefaultDatasetConfig()
	cfg.NumPersons = 40
	cfg.Density = 8
	cfg.NumWindows = 8
	ds, err := evmatching.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "w.gob")
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// serveArgs boots run in the background with stdout silenced and returns the
// bound address.
func serveArgs(t *testing.T, args []string) string {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})

	ready := make(chan string, 1)
	go func() {
		// http.Serve never returns cleanly; the process exit tears it down.
		_ = run(args, ready)
	}()
	select {
	case addr := <-ready:
		return addr
	case <-time.After(60 * time.Second):
		t.Fatal("server never became ready")
		return ""
	}
}

func TestServeEndToEnd(t *testing.T) {
	data := writeDataset(t)
	addr := serveArgs(t, []string{"-data", data, "-addr", "127.0.0.1:0"})

	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Persons int `json:"persons"`
		Matched int `json:"matched"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Persons != 40 || health.Matched == 0 {
		t.Errorf("health = %+v", health)
	}

	// Serial mode still serves /metricsz — no cluster counters, but the
	// batch matcher's blocking-prune gauges must be published.
	mresp, err := http.Get(fmt.Sprintf("http://%s/metricsz", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Errorf("/metricsz status = %d", mresp.StatusCode)
	}
	var counters map[string]int64
	if err := json.NewDecoder(mresp.Body).Decode(&counters); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"block_candidates_total", "block_pruned_total", "block_prune_ratio"} {
		if _, ok := counters[name]; !ok {
			t.Errorf("/metricsz missing %s: %v", name, counters)
		}
	}
	if counters["block_candidates_total"] <= 0 {
		t.Errorf("universal matching probed no scenarios: block_candidates_total = %d",
			counters["block_candidates_total"])
	}
	if r := counters["block_prune_ratio"]; r < 0 || r > 100 {
		t.Errorf("block_prune_ratio = %d, want a percent in [0,100]", r)
	}
}

func TestServeStreamMode(t *testing.T) {
	data := writeDataset(t)
	addr := serveArgs(t, []string{"-data", data, "-addr", "127.0.0.1:0", "-stream-window", "1000"})

	// The stream endpoints exist and accept an empty batch.
	resp, err := http.Post(fmt.Sprintf("http://%s/ingest", addr), "application/x-ndjson", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/ingest status = %d", resp.StatusCode)
	}
	var body struct {
		Accepted int `json:"accepted"`
		Dropped  int `json:"dropped"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Accepted != 0 || body.Dropped != 0 {
		t.Errorf("empty ingest body = %+v", body)
	}
}

// TestServeStreamCheckpointRestore pins the -stream-checkpoint startup
// path: a checkpoint written by a prior engine (watermark already past
// window 0) restores into the server, so an observation for window 0 is
// late-dropped — a fresh engine would have accepted it.
func TestServeStreamCheckpointRestore(t *testing.T) {
	data := writeDataset(t)
	ds, err := evmatching.LoadDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	cfg := stream.Config{
		Targets:    ds.AllEIDs(),
		WindowMS:   1000,
		LatenessMS: 250,
		Dim:        ds.Config.DescriptorDim(),
	}
	eng, err := stream.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, obs, err := stream.EventsFromDataset(ds, 1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range obs[:len(obs)/2] {
		if _, err := eng.Ingest(o); err != nil {
			t.Fatalf("Ingest %d: %v", i, err)
		}
	}
	if wm, ok := eng.Watermark(); !ok || wm < 1000 {
		t.Fatalf("fixture watermark %d has not passed window 0", wm)
	}
	ckpt := filepath.Join(t.TempDir(), "state.ckpt")
	if err := spill.WriteFileAtomic(spill.OS{}, ckpt, eng.Checkpoint); err != nil {
		t.Fatalf("write checkpoint: %v", err)
	}

	addr := serveArgs(t, []string{
		"-data", data, "-addr", "127.0.0.1:0",
		"-stream-window", "1000", "-stream-lateness", "250",
		"-stream-checkpoint", ckpt,
	})
	line, err := json.Marshal(stream.Observation{
		TS: 0, Kind: stream.KindE, Cell: obs[0].Cell, EID: cfg.Targets[0], Attr: scenario.AttrInclusive,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(fmt.Sprintf("http://%s/ingest", addr), "application/x-ndjson",
		strings.NewReader(string(line)+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Accepted int `json:"accepted"`
		Dropped  int `json:"dropped"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Accepted != 0 || body.Dropped != 1 {
		t.Errorf("window-0 observation after restore = %+v, want late-dropped (fresh state would accept it)", body)
	}
}

func TestServeClusterMode(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster-mode end-to-end skipped in -short")
	}
	data := writeDataset(t)
	addr := serveArgs(t, []string{"-data", data, "-addr", "127.0.0.1:0", "-mode", "cluster", "-workers", "2"})

	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Matched int `json:"matched"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Matched == 0 {
		t.Errorf("cluster mode matched nothing: %+v", health)
	}

	mresp, err := http.Get(fmt.Sprintf("http://%s/metricsz", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var counters map[string]int64
	if err := json.NewDecoder(mresp.Body).Decode(&counters); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"cluster.retries", "cluster.evictions", "cluster.speculative_wins", "cluster.fallbacks",
	} {
		if _, ok := counters[name]; !ok {
			t.Errorf("/metricsz missing %s: %v", name, counters)
		}
	}
	if counters["cluster.fallbacks"] != 0 {
		t.Errorf("healthy cluster should not fall back, got %d", counters["cluster.fallbacks"])
	}
}

func TestRunValidation(t *testing.T) {
	if err := run(nil, nil); err == nil {
		t.Error("want error for missing -data")
	}
	data := writeDataset(t)
	if err := run([]string{"-data", data, "-mode", "quantum"}, nil); err == nil {
		t.Error("want error for unknown mode")
	}
	if err := run([]string{"-data", "missing.gob"}, nil); err == nil {
		t.Error("want error for missing dataset")
	}
	if err := run([]string{"-data", data, "-mode", "cluster", "-workers", "0"}, nil); err == nil {
		t.Error("want error for cluster mode with zero workers")
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"evmatching"
)

func writeDataset(t *testing.T) string {
	t.Helper()
	cfg := evmatching.DefaultDatasetConfig()
	cfg.NumPersons = 40
	cfg.Density = 8
	cfg.NumWindows = 8
	ds, err := evmatching.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "w.gob")
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestServeEndToEnd(t *testing.T) {
	data := writeDataset(t)

	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()

	ready := make(chan string, 1)
	go func() {
		// http.Serve never returns cleanly; the process exit tears it down.
		_ = run([]string{"-data", data, "-addr", "127.0.0.1:0"}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Persons int `json:"persons"`
		Matched int `json:"matched"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Persons != 40 || health.Matched == 0 {
		t.Errorf("health = %+v", health)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run(nil, nil); err == nil {
		t.Error("want error for missing -data")
	}
	data := writeDataset(t)
	if err := run([]string{"-data", data, "-mode", "quantum"}, nil); err == nil {
		t.Error("want error for unknown mode")
	}
	if err := run([]string{"-data", "missing.gob"}, nil); err == nil {
		t.Error("want error for missing dataset")
	}
}

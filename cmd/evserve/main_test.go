package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"evmatching"
)

func writeDataset(t *testing.T) string {
	t.Helper()
	cfg := evmatching.DefaultDatasetConfig()
	cfg.NumPersons = 40
	cfg.Density = 8
	cfg.NumWindows = 8
	ds, err := evmatching.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "w.gob")
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// serveArgs boots run in the background with stdout silenced and returns the
// bound address.
func serveArgs(t *testing.T, args []string) string {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})

	ready := make(chan string, 1)
	go func() {
		// http.Serve never returns cleanly; the process exit tears it down.
		_ = run(args, ready)
	}()
	select {
	case addr := <-ready:
		return addr
	case <-time.After(60 * time.Second):
		t.Fatal("server never became ready")
		return ""
	}
}

func TestServeEndToEnd(t *testing.T) {
	data := writeDataset(t)
	addr := serveArgs(t, []string{"-data", data, "-addr", "127.0.0.1:0"})

	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Persons int `json:"persons"`
		Matched int `json:"matched"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Persons != 40 || health.Matched == 0 {
		t.Errorf("health = %+v", health)
	}

	// Serial mode still serves /metricsz — no cluster counters, but the
	// batch matcher's blocking-prune gauges must be published.
	mresp, err := http.Get(fmt.Sprintf("http://%s/metricsz", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Errorf("/metricsz status = %d", mresp.StatusCode)
	}
	var counters map[string]int64
	if err := json.NewDecoder(mresp.Body).Decode(&counters); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"block_candidates_total", "block_pruned_total", "block_prune_ratio"} {
		if _, ok := counters[name]; !ok {
			t.Errorf("/metricsz missing %s: %v", name, counters)
		}
	}
	if counters["block_candidates_total"] <= 0 {
		t.Errorf("universal matching probed no scenarios: block_candidates_total = %d",
			counters["block_candidates_total"])
	}
	if r := counters["block_prune_ratio"]; r < 0 || r > 100 {
		t.Errorf("block_prune_ratio = %d, want a percent in [0,100]", r)
	}
}

func TestServeStreamMode(t *testing.T) {
	data := writeDataset(t)
	addr := serveArgs(t, []string{"-data", data, "-addr", "127.0.0.1:0", "-stream-window", "1000"})

	// The stream endpoints exist and accept an empty batch.
	resp, err := http.Post(fmt.Sprintf("http://%s/ingest", addr), "application/x-ndjson", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/ingest status = %d", resp.StatusCode)
	}
	var body struct {
		Accepted int `json:"accepted"`
		Dropped  int `json:"dropped"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Accepted != 0 || body.Dropped != 0 {
		t.Errorf("empty ingest body = %+v", body)
	}
}

func TestServeClusterMode(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster-mode end-to-end skipped in -short")
	}
	data := writeDataset(t)
	addr := serveArgs(t, []string{"-data", data, "-addr", "127.0.0.1:0", "-mode", "cluster", "-workers", "2"})

	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Matched int `json:"matched"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Matched == 0 {
		t.Errorf("cluster mode matched nothing: %+v", health)
	}

	mresp, err := http.Get(fmt.Sprintf("http://%s/metricsz", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var counters map[string]int64
	if err := json.NewDecoder(mresp.Body).Decode(&counters); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"cluster.retries", "cluster.evictions", "cluster.speculative_wins", "cluster.fallbacks",
	} {
		if _, ok := counters[name]; !ok {
			t.Errorf("/metricsz missing %s: %v", name, counters)
		}
	}
	if counters["cluster.fallbacks"] != 0 {
		t.Errorf("healthy cluster should not fall back, got %d", counters["cluster.fallbacks"])
	}
}

func TestRunValidation(t *testing.T) {
	if err := run(nil, nil); err == nil {
		t.Error("want error for missing -data")
	}
	data := writeDataset(t)
	if err := run([]string{"-data", data, "-mode", "quantum"}, nil); err == nil {
		t.Error("want error for unknown mode")
	}
	if err := run([]string{"-data", "missing.gob"}, nil); err == nil {
		t.Error("want error for missing dataset")
	}
	if err := run([]string{"-data", data, "-mode", "cluster", "-workers", "0"}, nil); err == nil {
		t.Error("want error for cluster mode with zero workers")
	}
}

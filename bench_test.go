package evmatching

import (
	"context"
	"io"
	"math/rand"
	"testing"

	"evmatching/internal/core"
	"evmatching/internal/experiments"
	"evmatching/internal/metrics"
)

// The benchmarks below regenerate each of the paper's tables and figures at
// quick scale (200 persons); run `go run ./cmd/evbench` for the full-scale
// 1000-person reproduction. Custom metrics surface the quantities the paper
// plots so `go test -bench` output doubles as a shape check.

// benchRunner builds a fresh quick-scale experiment runner.
func benchRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	r, err := experiments.NewRunner(experiments.Quick(), io.Discard)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

func lastColumn(b *testing.B, s *metrics.Series, name string) float64 {
	b.Helper()
	col, ok := s.Column(name)
	if !ok || len(col) == 0 {
		b.Fatalf("series missing column %q", name)
	}
	return col[len(col)-1]
}

// BenchmarkFig5SelectedScenariosVsEIDs regenerates Fig. 5: unique selected
// scenarios as the matched-EID count grows, SS vs EDP.
func BenchmarkFig5SelectedScenariosVsEIDs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		s, err := r.Fig5(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastColumn(b, s, "SS"), "SS-selected")
		b.ReportMetric(lastColumn(b, s, "EDP"), "EDP-selected")
	}
}

// BenchmarkFig6SelectedScenariosVsDensity regenerates Fig. 6: SS's count
// falls and converges with density while EDP's grows.
func BenchmarkFig6SelectedScenariosVsDensity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		s, err := r.Fig6(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		cols := r.Config().DensityEIDCounts
		b.ReportMetric(lastColumn(b, s, "SS-"+metrics.F(float64(cols[len(cols)-1]), 0)), "SS-selected")
	}
}

// BenchmarkFig7ScenariosPerEID regenerates Fig. 7: average selected
// scenarios per matched EID.
func BenchmarkFig7ScenariosPerEID(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		s, err := r.Fig7(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastColumn(b, s, "SS"), "SS-perEID")
		b.ReportMetric(lastColumn(b, s, "EDP"), "EDP-perEID")
	}
}

// BenchmarkFig8TimeVsEIDs regenerates Fig. 8: E/V processing time vs matched
// EIDs (V dominates; SS undercuts EDP).
func BenchmarkFig8TimeVsEIDs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		s, err := r.Fig8(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastColumn(b, s, "SS-E+V"), "SS-s")
		b.ReportMetric(lastColumn(b, s, "EDP-E+V"), "EDP-s")
	}
}

// BenchmarkFig9TimeVsDensity regenerates Fig. 9: processing time vs density.
func BenchmarkFig9TimeVsDensity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		s, err := r.Fig9(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastColumn(b, s, "SS-E+V"), "SS-s")
	}
}

// BenchmarkTable1AccuracyVsEIDs regenerates Table I: accuracy vs number of
// matched EIDs.
func BenchmarkTable1AccuracyVsEIDs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		if _, err := r.Table1(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2AccuracyVsDensity regenerates Table II: accuracy vs
// density.
func BenchmarkTable2AccuracyVsDensity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		if _, err := r.Table2(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10EIDMissing regenerates Fig. 10: accuracy under missing EIDs.
func BenchmarkFig10EIDMissing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		if _, _, err := r.Fig10(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11VIDMissing regenerates Fig. 11: accuracy under missing VIDs
// with matching refining.
func BenchmarkFig11VIDMissing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		if _, _, err := r.Fig11(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benchmarks (see DESIGN.md §5).

func BenchmarkAblationNoReuseCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		if _, err := r.AblationReuse(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationNoVagueZone(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		if _, err := r.AblationVagueZone(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationRefineRounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		if _, err := r.AblationRefineRounds(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMatchingSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		if _, err := r.AblationMatchingSize(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationParallelSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		if _, err := r.AblationParallelSpeedup(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationLayout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		if _, err := r.AblationLayout(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// Single-run micro benchmarks of the two algorithms on one shared dataset.

func benchDataset(b *testing.B) *Dataset {
	b.Helper()
	cfg := DefaultDatasetConfig()
	cfg.NumPersons = 200
	cfg.Density = 15
	cfg.NumWindows = 32
	ds, err := Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func benchMatch(b *testing.B, alg core.Algorithm, mode core.Mode) {
	ds := benchDataset(b)
	targets := ds.SampleEIDs(80, rand.New(rand.NewSource(5)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Match(context.Background(), ds, Options{Algorithm: alg, Mode: mode}, targets)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.SelectedScenarios), "selected")
		b.ReportMetric(rep.Accuracy(ds.TruthVID)*100, "acc%")
	}
}

func BenchmarkMatchSSSerial(b *testing.B)   { benchMatch(b, core.AlgorithmSS, core.ModeSerial) }
func BenchmarkMatchSSParallel(b *testing.B) { benchMatch(b, core.AlgorithmSS, core.ModeParallel) }
func BenchmarkMatchEDPSerial(b *testing.B)  { benchMatch(b, core.AlgorithmEDP, core.ModeSerial) }
func BenchmarkGenerateDataset(b *testing.B) {
	cfg := DefaultDatasetConfig()
	cfg.NumPersons = 200
	cfg.Density = 15
	cfg.NumWindows = 16
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMobility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		if _, err := r.AblationMobility(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

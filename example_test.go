package evmatching_test

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"evmatching"
)

// Example demonstrates the core loop: generate a synthetic EV world, match
// a set of device identities to visual identities, and score against the
// generator's ground truth.
func Example() {
	cfg := evmatching.DefaultDatasetConfig()
	cfg.NumPersons = 80
	cfg.Density = 10
	cfg.NumWindows = 16
	ds, err := evmatching.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	targets := ds.SampleEIDs(20, rand.New(rand.NewSource(1)))
	rep, err := evmatching.Match(context.Background(), ds, evmatching.Options{}, targets)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matched %d of %d targets\n", rep.Matched(), len(rep.Targets))
	fmt.Printf("accuracy %.0f%%\n", rep.Accuracy(ds.TruthVID)*100)
	// Output:
	// matched 20 of 20 targets
	// accuracy 100%
}

// ExampleMatcher_MatchAll shows universal matching followed by fused
// queries: one lookup answers with both identities.
func ExampleMatcher_MatchAll() {
	cfg := evmatching.DefaultDatasetConfig()
	cfg.NumPersons = 60
	cfg.Density = 10
	cfg.NumWindows = 16
	ds, err := evmatching.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	m, err := evmatching.NewMatcher(ds, evmatching.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := m.MatchAll(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	idx, err := evmatching.BuildFusionIndex(ds, rep)
	if err != nil {
		log.Fatal(err)
	}
	e := ds.AllEIDs()[0]
	v, err := idx.VIDOf(e)
	if err != nil {
		log.Fatal(err)
	}
	back, err := idx.EIDOf(v)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round trip holds: %v\n", back == e)
	// Output:
	// round trip holds: true
}

// ExampleMatcher_NewSession shows online matching: windows stream into a
// session and the resolved count only grows.
func ExampleMatcher_NewSession() {
	cfg := evmatching.DefaultDatasetConfig()
	cfg.NumPersons = 60
	cfg.Density = 10
	cfg.NumWindows = 12
	ds, err := evmatching.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	m, err := evmatching.NewMatcher(ds, evmatching.Options{})
	if err != nil {
		log.Fatal(err)
	}
	session, err := m.NewSession(ds.AllEIDs()[:10])
	if err != nil {
		log.Fatal(err)
	}
	for w := 0; w < cfg.NumWindows && !session.Distinguished(); w++ {
		if err := session.Advance(w); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("distinguished all after %d windows: %v\n",
		session.Windows(), session.Distinguished())
	// Output:
	// distinguished all after 3 windows: true
}
